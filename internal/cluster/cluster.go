// Package cluster implements the clustering substrate of the ForestView
// reproduction: agglomerative hierarchical clustering with the metrics and
// linkages of Cluster 3.0 (whose CDT/GTR/ATR output Java TreeView — and
// therefore ForestView — renders), tree manipulation (leaf ordering,
// cutting), the GTR/ATR tree file formats, and k-means as the flat
// alternative.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"

	"forestview/internal/stats"
)

// Metric selects the pairwise dissimilarity between expression rows.
type Metric int

const (
	// PearsonDist is 1 - centered Pearson correlation, Cluster 3.0's
	// default gene similarity.
	PearsonDist Metric = iota
	// PearsonAbsDist is 1 - |r|, grouping correlated and anti-correlated
	// profiles together.
	PearsonAbsDist
	// UncenteredDist is 1 - uncentered correlation (cosine distance).
	UncenteredDist
	// SpearmanDist is 1 - Spearman rank correlation.
	SpearmanDist
	// EuclideanDist is the missing-rescaled Euclidean distance.
	EuclideanDist
	// ManhattanDist is the missing-rescaled city-block distance.
	ManhattanDist
)

// String returns the Cluster 3.0-style name of the metric.
func (m Metric) String() string {
	switch m {
	case PearsonDist:
		return "correlation (centered)"
	case PearsonAbsDist:
		return "absolute correlation"
	case UncenteredDist:
		return "correlation (uncentered)"
	case SpearmanDist:
		return "spearman rank correlation"
	case EuclideanDist:
		return "euclidean"
	case ManhattanDist:
		return "city-block"
	default:
		return fmt.Sprintf("Metric(%d)", int(m))
	}
}

// Distance returns the dissimilarity between two expression vectors under
// the metric. Undefined correlations (constant or all-missing vectors)
// yield the maximum distance so degenerate rows cluster last rather than
// poisoning the tree.
func (m Metric) Distance(a, b []float64) float64 {
	switch m {
	case PearsonDist:
		r := stats.Pearson(a, b)
		if math.IsNaN(r) {
			return 2
		}
		return 1 - r
	case PearsonAbsDist:
		r := stats.Pearson(a, b)
		if math.IsNaN(r) {
			return 1
		}
		return 1 - math.Abs(r)
	case UncenteredDist:
		r := stats.PearsonUncentered(a, b)
		if math.IsNaN(r) {
			return 2
		}
		return 1 - r
	case SpearmanDist:
		r := stats.Spearman(a, b)
		if math.IsNaN(r) {
			return 2
		}
		return 1 - r
	case EuclideanDist:
		d := stats.Euclidean(a, b)
		if math.IsNaN(d) {
			return math.MaxFloat64
		}
		return d
	case ManhattanDist:
		d := stats.Manhattan(a, b)
		if math.IsNaN(d) {
			return math.MaxFloat64
		}
		return d
	default:
		return math.MaxFloat64
	}
}

// Linkage selects how the distance between merged clusters is defined.
type Linkage int

const (
	// AverageLinkage (UPGMA) is Cluster 3.0's default.
	AverageLinkage Linkage = iota
	// CompleteLinkage uses the maximum pairwise distance.
	CompleteLinkage
	// SingleLinkage uses the minimum pairwise distance.
	SingleLinkage
)

// String names the linkage.
func (l Linkage) String() string {
	switch l {
	case AverageLinkage:
		return "average"
	case CompleteLinkage:
		return "complete"
	case SingleLinkage:
		return "single"
	default:
		return fmt.Sprintf("Linkage(%d)", int(l))
	}
}

// Merge records one agglomeration step. A and B index either leaves
// (0..NLeaves-1) or earlier merges (NLeaves+i for Merges[i]). Height is the
// inter-cluster distance at which the merge happened.
type Merge struct {
	A, B   int
	Height float64
}

// Tree is a dendrogram over NLeaves items: exactly NLeaves-1 merges, the
// last of which is the root.
type Tree struct {
	NLeaves int
	Merges  []Merge
}

// Root returns the index of the root node (NLeaves + len(Merges) - 1), or
// 0 for single-leaf trees.
func (t *Tree) Root() int {
	if len(t.Merges) == 0 {
		return 0
	}
	return t.NLeaves + len(t.Merges) - 1
}

// Validate checks that the tree is a well-formed dendrogram: the right
// number of merges, children referencing only leaves or earlier merges, and
// every node used exactly once as a child (except the root).
func (t *Tree) Validate() error {
	if t.NLeaves <= 0 {
		return errors.New("cluster: tree has no leaves")
	}
	if len(t.Merges) != t.NLeaves-1 {
		return fmt.Errorf("cluster: %d merges for %d leaves, want %d",
			len(t.Merges), t.NLeaves, t.NLeaves-1)
	}
	used := make([]bool, t.NLeaves+len(t.Merges))
	for i, m := range t.Merges {
		limit := t.NLeaves + i
		for _, c := range []int{m.A, m.B} {
			if c < 0 || c >= limit {
				return fmt.Errorf("cluster: merge %d references node %d (limit %d)", i, c, limit)
			}
			if used[c] {
				return fmt.Errorf("cluster: node %d used as child twice", c)
			}
			used[c] = true
		}
	}
	for n := 0; n < t.NLeaves+len(t.Merges)-1; n++ {
		if !used[n] {
			return fmt.Errorf("cluster: node %d never merged", n)
		}
	}
	return nil
}

// LeafOrder returns the left-to-right order of leaves produced by a
// depth-first traversal, the order in which the clustered heatmap draws its
// rows.
func (t *Tree) LeafOrder() []int {
	if t.NLeaves == 1 {
		return []int{0}
	}
	order := make([]int, 0, t.NLeaves)
	// Iterative DFS to stay safe on degenerate (chain-shaped) trees of
	// paper-scale datasets.
	stack := []int{t.Root()}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n < t.NLeaves {
			order = append(order, n)
			continue
		}
		m := t.Merges[n-t.NLeaves]
		// Push right first so left is visited first.
		stack = append(stack, m.B, m.A)
	}
	return order
}

// LeavesUnder returns the leaves of the subtree rooted at node (a leaf
// index < NLeaves, or NLeaves+i for merge i), in leaf-order within the
// subtree. This backs ForestView's "select a tree node" interaction.
func (t *Tree) LeavesUnder(node int) []int {
	if node < 0 || node >= t.NLeaves+len(t.Merges) {
		return nil
	}
	if node < t.NLeaves {
		return []int{node}
	}
	var out []int
	stack := []int{node}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n < t.NLeaves {
			out = append(out, n)
			continue
		}
		m := t.Merges[n-t.NLeaves]
		stack = append(stack, m.B, m.A)
	}
	return out
}

// Cut returns a flat clustering with k clusters by cutting the dendrogram
// below its k-1 highest merges. The result maps each leaf to a cluster ID
// in 0..k-1, numbered by first appearance in leaf order.
func (t *Tree) Cut(k int) ([]int, error) {
	if k < 1 || k > t.NLeaves {
		return nil, fmt.Errorf("cluster: cannot cut %d leaves into %d clusters", t.NLeaves, k)
	}
	// The merges are produced in nondecreasing height order for the
	// algorithms here, but user-loaded trees may not be; cut by suppressing
	// the k-1 highest merges globally.
	type hm struct {
		idx int
		h   float64
	}
	hs := make([]hm, len(t.Merges))
	for i, m := range t.Merges {
		hs[i] = hm{i, m.Height}
	}
	// Partial selection of the k-1 largest heights.
	suppressed := make(map[int]bool, k-1)
	for c := 0; c < k-1; c++ {
		best := -1
		for i, e := range hs {
			if suppressed[e.idx] {
				continue
			}
			if best == -1 || e.h > hs[best].h || (e.h == hs[best].h && e.idx > hs[best].idx) {
				best = i
			}
		}
		suppressed[hs[best].idx] = true
	}
	// Union the surviving merges.
	parent := make([]int, t.NLeaves+len(t.Merges))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for i, m := range t.Merges {
		node := t.NLeaves + i
		if suppressed[i] {
			continue
		}
		ra, rb := find(m.A), find(m.B)
		parent[ra] = node
		parent[rb] = node
	}
	// Number clusters by first appearance in leaf order.
	ids := make(map[int]int)
	out := make([]int, t.NLeaves)
	for _, leaf := range t.LeafOrder() {
		root := find(leaf)
		id, ok := ids[root]
		if !ok {
			id = len(ids)
			ids[root] = id
		}
		out[leaf] = id
	}
	if len(ids) != k {
		return nil, fmt.Errorf("cluster: cut produced %d clusters, want %d", len(ids), k)
	}
	return out, nil
}

// ReferenceHierarchical is the pre-kernel clustering path, retained
// verbatim as the golden standard the nearest-neighbor-chain kernel
// (Hierarchical, nnchain.go) must match: it computes the full pairwise
// distance matrix serially, then performs greedy globally-closest-pair
// Lance-Williams agglomeration with a nearest-neighbour cache. The parity
// tests in nnchain_test.go hold the kernel to this tree (heights within
// 1e-12, identical Cut partitions) on random, tied and NaN-bearing inputs.
func ReferenceHierarchical(rows [][]float64, metric Metric, linkage Linkage) (*Tree, error) {
	n := len(rows)
	if n == 0 {
		return nil, errors.New("cluster: no rows")
	}
	t := &Tree{NLeaves: n}
	if n == 1 {
		return t, nil
	}
	// Condensed distance matrix d[i][j] for j<i stored in flat triangular
	// layout to halve memory at paper scale.
	dist := newTriMatrix(n)
	for i := 1; i < n; i++ {
		for j := 0; j < i; j++ {
			dist.set(i, j, metric.Distance(rows[i], rows[j]))
		}
	}
	return agglomerate(n, dist, linkage), nil
}

// HierarchicalFromDistance builds a dendrogram from a precomputed symmetric
// distance matrix, for callers that already paid the O(n²) metric cost.
// NaN entries (undefined dissimilarities) are treated as the maximum
// distance rather than poisoning the agglomeration's comparisons.
func HierarchicalFromDistance(d [][]float64, linkage Linkage) (*Tree, error) {
	n := len(d)
	if n == 0 {
		return nil, errors.New("cluster: empty distance matrix")
	}
	for i := range d {
		if len(d[i]) != n {
			return nil, fmt.Errorf("cluster: distance matrix row %d has %d entries, want %d", i, len(d[i]), n)
		}
	}
	t := &Tree{NLeaves: n}
	if n == 1 {
		return t, nil
	}
	dist := newTriMatrix(n)
	for i := 1; i < n; i++ {
		for j := 0; j < i; j++ {
			v := d[i][j]
			if math.IsNaN(v) {
				v = math.MaxFloat64
			}
			dist.set(i, j, v)
		}
	}
	return nnChain(context.Background(), n, dist, linkage)
}

// triMatrix is a flat lower-triangular matrix (i>j).
type triMatrix struct {
	n int
	v []float64
}

func newTriMatrix(n int) *triMatrix {
	return &triMatrix{n: n, v: make([]float64, n*(n-1)/2)}
}

func (m *triMatrix) idx(i, j int) int {
	if i < j {
		i, j = j, i
	}
	return i*(i-1)/2 + j
}

func (m *triMatrix) at(i, j int) float64     { return m.v[m.idx(i, j)] }
func (m *triMatrix) set(i, j int, d float64) { m.v[m.idx(i, j)] = d }

// agglomerate runs generic Lance-Williams agglomeration over an existing
// triangular distance matrix. Cluster slots are reused: after merging a and
// b (a<b as slots), the merged cluster lives in slot a and slot b dies.
func agglomerate(n int, dist *triMatrix, linkage Linkage) *Tree {
	t := &Tree{NLeaves: n, Merges: make([]Merge, 0, n-1)}
	active := make([]bool, n)
	size := make([]int, n)   // cluster sizes for average linkage
	nodeOf := make([]int, n) // tree node ID currently held by each slot
	for i := 0; i < n; i++ {
		active[i] = true
		size[i] = 1
		nodeOf[i] = i
	}
	// nearest[i] caches the current best neighbour of slot i to cut the
	// O(n³) naive scan down to ~O(n²) in practice.
	nearest := make([]int, n)
	nearDist := make([]float64, n)
	recomputeNearest := func(i int) {
		nearest[i] = -1
		nearDist[i] = math.Inf(1)
		for j := 0; j < n; j++ {
			if j == i || !active[j] {
				continue
			}
			if d := dist.at(i, j); d < nearDist[i] {
				nearDist[i] = d
				nearest[i] = j
			}
		}
	}
	for i := 0; i < n; i++ {
		recomputeNearest(i)
	}
	for step := 0; step < n-1; step++ {
		// Find the globally closest active pair via the nearest cache.
		bi, bd := -1, math.Inf(1)
		for i := 0; i < n; i++ {
			if active[i] && nearest[i] >= 0 && nearDist[i] < bd {
				bd = nearDist[i]
				bi = i
			}
		}
		a, b := bi, nearest[bi]
		if a > b {
			a, b = b, a
		}
		t.Merges = append(t.Merges, Merge{A: nodeOf[a], B: nodeOf[b], Height: bd})
		newNode := n + step
		// Lance-Williams update of distances from the merged cluster to
		// every other active cluster; merged cluster occupies slot a.
		for j := 0; j < n; j++ {
			if j == a || j == b || !active[j] {
				continue
			}
			da, db := dist.at(a, j), dist.at(b, j)
			var d float64
			switch linkage {
			case AverageLinkage:
				wa := float64(size[a]) / float64(size[a]+size[b])
				wb := float64(size[b]) / float64(size[a]+size[b])
				d = wa*da + wb*db
			case CompleteLinkage:
				d = math.Max(da, db)
			case SingleLinkage:
				d = math.Min(da, db)
			}
			dist.set(a, j, d)
		}
		active[b] = false
		size[a] += size[b]
		nodeOf[a] = newNode
		// Refresh nearest caches invalidated by the merge.
		recomputeNearest(a)
		for j := 0; j < n; j++ {
			if !active[j] || j == a {
				continue
			}
			if nearest[j] == a || nearest[j] == b {
				recomputeNearest(j)
			} else if d := dist.at(a, j); d < nearDist[j] {
				nearDist[j] = d
				nearest[j] = a
			}
		}
	}
	return t
}
