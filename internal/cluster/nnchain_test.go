package cluster

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"
)

// allMetrics and allLinkages enumerate every supported combination for the
// parity sweeps.
var allMetrics = []Metric{
	PearsonDist, PearsonAbsDist, UncenteredDist, SpearmanDist, EuclideanDist, ManhattanDist,
}
var allLinkages = []Linkage{AverageLinkage, CompleteLinkage, SingleLinkage}

// randomRows generates n x dim data; nanRate injects missing values.
func noisyRows(seed int64, n, dim int, nanRate float64) [][]float64 {
	r := rand.New(rand.NewSource(seed))
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, dim)
		for j := range rows[i] {
			if r.Float64() < nanRate {
				rows[i][j] = math.NaN()
			} else {
				rows[i][j] = r.NormFloat64()
			}
		}
	}
	return rows
}

// requireTreeParity asserts the kernel tree matches the reference tree:
// merge heights equal within tol position by position, and identical Cut(k)
// partitions (modulo cluster label order) for every k whose cut boundary
// does not fall inside a block of tied heights — inside a tie, which of the
// equal-height merges Cut suppresses is tie-break order, and both answers
// are correct partitions of the same dendrogram. When every height is
// pairwise distinct the merge structure and leaf order must match exactly
// as well.
func requireTreeParity(t *testing.T, ref, got *Tree, tol float64, tiesBenign bool) {
	t.Helper()
	if err := got.Validate(); err != nil {
		t.Fatalf("kernel tree invalid: %v", err)
	}
	if got.NLeaves != ref.NLeaves || len(got.Merges) != len(ref.Merges) {
		t.Fatalf("shape: kernel %d/%d vs reference %d/%d leaves/merges",
			got.NLeaves, len(got.Merges), ref.NLeaves, len(ref.Merges))
	}
	for i := range ref.Merges {
		dh := math.Abs(ref.Merges[i].Height - got.Merges[i].Height)
		if !(dh <= tol) {
			t.Fatalf("merge %d height: reference %v vs kernel %v (|Δ|=%v > %v)",
				i, ref.Merges[i].Height, got.Merges[i].Height, dh, tol)
		}
	}
	n := ref.NLeaves
	strict := true
	for i := 1; i < len(ref.Merges); i++ {
		if ref.Merges[i].Height-ref.Merges[i-1].Height <= 2*tol {
			strict = false
			break
		}
	}
	if strict {
		for i := range ref.Merges {
			if ref.Merges[i].A != got.Merges[i].A || ref.Merges[i].B != got.Merges[i].B {
				t.Fatalf("merge %d children: reference %+v vs kernel %+v",
					i, ref.Merges[i], got.Merges[i])
			}
		}
		if !reflect.DeepEqual(ref.LeafOrder(), got.LeafOrder()) {
			t.Fatalf("leaf order differs:\nreference %v\nkernel    %v", ref.LeafOrder(), got.LeafOrder())
		}
	}
	if !strict && !tiesBenign {
		// Heights tied on input the caller has not vouched for: which of
		// the equal-height merges happens first is tie-break order, and
		// different orders yield different (equally correct) partitions.
		// Height parity above is the whole contract here.
		return
	}
	for k := 1; k <= n; k++ {
		if !strict && k > 1 && k < n {
			// Cut(k) suppresses the k-1 highest merges: sorted indices
			// n-k..n-2. Skip k when the kept/suppressed boundary is a tie.
			if ref.Merges[n-k].Height-ref.Merges[n-k-1].Height <= 2*tol {
				continue
			}
		}
		ra, err1 := ref.Cut(k)
		ga, err2 := got.Cut(k)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("Cut(%d): reference err=%v, kernel err=%v", k, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if !partitionsEqual(ra, ga) {
			t.Fatalf("Cut(%d) partitions differ:\nreference %v\nkernel    %v", k, ra, ga)
		}
	}
}

// distinctPairDistances reports whether every pairwise distance under the
// metric is separated from every other by more than 2*tol — the regime in
// which the agglomeration order is uniquely determined and exact structural
// parity is well-defined. Discrete metrics (Spearman over short rows)
// routinely fail this on random data.
func distinctPairDistances(rows [][]float64, metric Metric, tol float64) bool {
	var ds []float64
	for i := 1; i < len(rows); i++ {
		for j := 0; j < i; j++ {
			ds = append(ds, metric.Distance(rows[i], rows[j]))
		}
	}
	sort.Float64s(ds)
	for i := 1; i < len(ds); i++ {
		if ds[i]-ds[i-1] <= 2*tol {
			return false
		}
	}
	return true
}

// partitionsEqual reports whether two flat clusterings induce the same
// partition of the leaves regardless of cluster numbering.
func partitionsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	ab := make(map[int]int)
	ba := make(map[int]int)
	for i := range a {
		if m, ok := ab[a[i]]; ok && m != b[i] {
			return false
		}
		if m, ok := ba[b[i]]; ok && m != a[i] {
			return false
		}
		ab[a[i]] = b[i]
		ba[b[i]] = a[i]
	}
	return true
}

// TestNNChainGoldenParityRandom holds the kernel to the reference tree on
// generic (distance-distinct) random data, across every metric and linkage,
// with exact structural equality.
func TestNNChainGoldenParityRandom(t *testing.T) {
	for _, metric := range allMetrics {
		for _, linkage := range allLinkages {
			for seed := int64(1); seed <= 3; seed++ {
				rows := noisyRows(seed*100+int64(metric)*10+int64(linkage), 48, 12, 0)
				if !distinctPairDistances(rows, metric, 1e-12) {
					continue // tied input; covered by the dedicated ties test
				}
				ref, err := ReferenceHierarchical(rows, metric, linkage)
				if err != nil {
					t.Fatalf("%v/%v: reference: %v", metric, linkage, err)
				}
				got, err := Hierarchical(rows, metric, linkage)
				if err != nil {
					t.Fatalf("%v/%v: kernel: %v", metric, linkage, err)
				}
				requireTreeParity(t, ref, got, 1e-12, false)
			}
		}
	}
}

// TestNNChainGoldenParityNaN is the missing-value regression: NaN-bearing
// rows must take the pairwise-complete fallback in the kernel and yield the
// reference tree exactly — no NaN may reach the distance matrix, the merge
// heights, or the comparisons between them.
func TestNNChainGoldenParityNaN(t *testing.T) {
	for _, metric := range allMetrics {
		for _, linkage := range allLinkages {
			rows := noisyRows(7+int64(metric)+int64(linkage), 40, 10, 0.15)
			// An all-missing row and a constant row: the classic degenerate
			// microarray rows that must cluster last, not poison the tree.
			for j := range rows[3] {
				rows[3][j] = math.NaN()
			}
			for j := range rows[5] {
				rows[5][j] = 1.5
			}
			// The degenerate rows tie at the metric's max distance, but the
			// tied merges form one transitively-connected block at the top
			// of the tree, so cuts at unambiguous boundaries stay
			// well-defined: the benign-ties mode below.
			ref, err := ReferenceHierarchical(rows, metric, linkage)
			if err != nil {
				t.Fatalf("%v/%v: reference: %v", metric, linkage, err)
			}
			got, err := Hierarchical(rows, metric, linkage)
			if err != nil {
				t.Fatalf("%v/%v: kernel: %v", metric, linkage, err)
			}
			for i, m := range got.Merges {
				if math.IsNaN(m.Height) {
					t.Fatalf("%v/%v: NaN height at merge %d", metric, linkage, i)
				}
			}
			requireTreeParity(t, ref, got, 1e-12, true)
		}
	}
}

// TestNNChainGoldenParityTies exercises tied distances (duplicate rows,
// zero distances): heights and Cut partitions must still agree even though
// tie-break order inside a block of equal-height merges is unspecified.
func TestNNChainGoldenParityTies(t *testing.T) {
	base := [][]float64{
		{1, 2, 3, 4, 5, 6},
		{6, 4, 2, 0, -2, -4},
		{0, 3, 1, 4, 2, 5},
	}
	var rows [][]float64
	for _, b := range base {
		for c := 0; c < 3; c++ { // three exact copies of each profile
			rows = append(rows, append([]float64(nil), b...))
		}
	}
	for _, metric := range []Metric{EuclideanDist, PearsonDist, ManhattanDist} {
		for _, linkage := range allLinkages {
			ref, err := ReferenceHierarchical(rows, metric, linkage)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Hierarchical(rows, metric, linkage)
			if err != nil {
				t.Fatal(err)
			}
			requireTreeParity(t, ref, got, 1e-12, true)
			// The three-copy blocks must be recovered exactly at k=3.
			assign, err := got.Cut(3)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < len(rows); i += 3 {
				if assign[i] != assign[i+1] || assign[i] != assign[i+2] {
					t.Fatalf("%v/%v: duplicate block %d split: %v", metric, linkage, i/3, assign)
				}
			}
		}
	}
}

// TestNNChainFromDistanceParity proves the precomputed-matrix entry point
// runs the same kernel: feeding Metric.Distance values through
// HierarchicalFromDistance must reproduce ReferenceHierarchical, and NaN
// entries map to the maximum distance instead of corrupting comparisons.
func TestNNChainFromDistanceParity(t *testing.T) {
	rows := noisyRows(99, 30, 8, 0)
	d := make([][]float64, len(rows))
	for i := range d {
		d[i] = make([]float64, len(rows))
		for j := range d[i] {
			if i != j {
				d[i][j] = EuclideanDist.Distance(rows[i], rows[j])
			}
		}
	}
	for _, linkage := range allLinkages {
		ref, err := ReferenceHierarchical(rows, EuclideanDist, linkage)
		if err != nil {
			t.Fatal(err)
		}
		got, err := HierarchicalFromDistance(d, linkage)
		if err != nil {
			t.Fatal(err)
		}
		requireTreeParity(t, ref, got, 1e-12, false)
	}

	nan := [][]float64{
		{0, 1, math.NaN()},
		{1, 0, 2},
		{math.NaN(), 2, 0},
	}
	tree, err := HierarchicalFromDistance(nan, SingleLinkage)
	if err != nil {
		t.Fatal(err)
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if m := tree.Merges[0]; m.A != 0 || m.B != 1 || m.Height != 1 {
		t.Fatalf("first merge = %+v, want 0+1 at height 1", m)
	}
	if math.IsNaN(tree.Merges[1].Height) {
		t.Fatal("NaN distance leaked into a merge height")
	}
}

// TestPairKernelFallbackMatchesMetric pins the kernel's two tiers together:
// for masked (NaN-bearing) rows the kernel must evaluate exactly
// Metric.Distance, and for fast rows it must agree within float tolerance.
func TestPairKernelFallbackMatchesMetric(t *testing.T) {
	rows := noisyRows(5, 20, 9, 0.2)
	for _, metric := range allMetrics {
		k := newPairKernel(rows, metric)
		for i := 1; i < len(rows); i++ {
			for j := 0; j < i; j++ {
				want := metric.Distance(rows[i], rows[j])
				got := k.dist(i, j)
				fast := k.fast != nil && k.fast[i] && k.fast[j] ||
					k.whole != nil && k.whole[i] && k.whole[j]
				if !fast && got != want {
					t.Fatalf("%v: fallback pair (%d,%d) = %v, want Metric.Distance %v",
						metric, i, j, got, want)
				}
				if math.Abs(got-want) > 1e-12 {
					t.Fatalf("%v: pair (%d,%d) = %v, want %v", metric, i, j, got, want)
				}
			}
		}
	}
}

// TestHierarchicalCtxCancel: a canceled context aborts the build with the
// context's error instead of returning a partial tree.
func TestHierarchicalCtxCancel(t *testing.T) {
	rows := noisyRows(11, 64, 8, 0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := HierarchicalCtx(ctx, rows, PearsonDist, AverageLinkage); err != context.Canceled {
		t.Fatalf("pre-canceled build: err = %v, want context.Canceled", err)
	}
	// A live context still produces the tree.
	tree, err := HierarchicalCtx(context.Background(), rows, PearsonDist, AverageLinkage)
	if err != nil || tree.NLeaves != 64 {
		t.Fatalf("live build: %v, %+v", err, tree)
	}
}

// TestHierarchicalRaceHammer runs concurrent kernel builds over shared rows
// (read-only input) and checks determinism; meaningful under -race.
func TestHierarchicalRaceHammer(t *testing.T) {
	rows := noisyRows(21, 80, 10, 0.05)
	want, err := Hierarchical(rows, PearsonDist, AverageLinkage)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := 0; it < 3; it++ {
				tree, err := Hierarchical(rows, PearsonDist, AverageLinkage)
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(tree, want) {
					errs <- errNondeterministic
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

var errNondeterministic = errorString("cluster: concurrent kernel builds diverged")

type errorString string

func (e errorString) Error() string { return string(e) }
