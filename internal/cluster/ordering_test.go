package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomRows(seed int64, n, dim int) [][]float64 {
	r := rand.New(rand.NewSource(seed))
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = make([]float64, dim)
		for j := range rows[i] {
			rows[i][j] = r.NormFloat64()
		}
	}
	return rows
}

func TestOptimizeLeafOrderIsPermutation(t *testing.T) {
	rows := randomRows(3, 25, 8)
	tree, err := Hierarchical(rows, PearsonDist, AverageLinkage)
	if err != nil {
		t.Fatal(err)
	}
	order, err := OptimizeLeafOrder(tree, rows, PearsonDist)
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, len(rows))
	for _, o := range order {
		if o < 0 || o >= len(rows) || seen[o] {
			t.Fatalf("not a permutation: %v", order)
		}
		seen[o] = true
	}
}

func TestOptimizeLeafOrderImprovesQuality(t *testing.T) {
	// Averaged over several seeds, the oriented order must beat or match
	// the naive DFS order — on every single seed it must never be worse
	// than naive by more than float noise at the junctions it controls.
	better, worse := 0, 0
	for seed := int64(0); seed < 10; seed++ {
		rows := randomRows(seed, 40, 10)
		tree, err := Hierarchical(rows, PearsonDist, AverageLinkage)
		if err != nil {
			t.Fatal(err)
		}
		naive := OrderQuality(rows, tree.LeafOrder(), PearsonDist)
		opt, err := OptimizeLeafOrder(tree, rows, PearsonDist)
		if err != nil {
			t.Fatal(err)
		}
		optQ := OrderQuality(rows, opt, PearsonDist)
		if optQ > naive+1e-9 {
			better++
		} else if optQ < naive-1e-9 {
			worse++
		}
	}
	if better <= worse {
		t.Fatalf("orientation pass improved %d seeds, worsened %d", better, worse)
	}
}

func TestOptimizeLeafOrderPreservesTreeStructure(t *testing.T) {
	// The oriented order must keep each subtree contiguous: for every
	// merge, its leaves form one contiguous block.
	rows := randomRows(7, 20, 6)
	tree, _ := Hierarchical(rows, EuclideanDist, CompleteLinkage)
	order, err := OptimizeLeafOrder(tree, rows, EuclideanDist)
	if err != nil {
		t.Fatal(err)
	}
	pos := make([]int, len(rows))
	for i, leaf := range order {
		pos[leaf] = i
	}
	// Collect each internal node's leaf set.
	leavesOf := make([][]int, tree.NLeaves+len(tree.Merges))
	for i := 0; i < tree.NLeaves; i++ {
		leavesOf[i] = []int{i}
	}
	for i, m := range tree.Merges {
		leavesOf[tree.NLeaves+i] = append(append([]int{}, leavesOf[m.A]...), leavesOf[m.B]...)
	}
	for i := range tree.Merges {
		leaves := leavesOf[tree.NLeaves+i]
		lo, hi := len(rows), -1
		for _, l := range leaves {
			if pos[l] < lo {
				lo = pos[l]
			}
			if pos[l] > hi {
				hi = pos[l]
			}
		}
		if hi-lo+1 != len(leaves) {
			t.Fatalf("merge %d leaves not contiguous in oriented order", i)
		}
	}
}

func TestOptimizeLeafOrderEdgeCases(t *testing.T) {
	if _, err := OptimizeLeafOrder(nil, nil, PearsonDist); err == nil {
		t.Fatal("nil tree should error")
	}
	single := &Tree{NLeaves: 1}
	order, err := OptimizeLeafOrder(single, [][]float64{{1, 2}}, PearsonDist)
	if err != nil || len(order) != 1 {
		t.Fatalf("single leaf: %v, %v", order, err)
	}
	tree := &Tree{NLeaves: 3, Merges: []Merge{{A: 0, B: 1, Height: 1}, {A: 3, B: 2, Height: 2}}}
	if _, err := OptimizeLeafOrder(tree, [][]float64{{1}}, PearsonDist); err == nil {
		t.Fatal("too few rows should error")
	}
}

func TestOrderQuality(t *testing.T) {
	rows := [][]float64{
		{1, 2, 3},
		{1.1, 2.1, 3.1},
		{3, 2, 1},
	}
	// Order [0,1,2]: junctions (0,1) similar, (1,2) anti — mean ≈ (1 + -1)/2.
	good := OrderQuality(rows, []int{0, 2, 1}, PearsonDist)
	bad := OrderQuality(rows, []int{0, 1, 2}, PearsonDist)
	_ = bad
	// Putting the anti-correlated row in the middle is worse than at the
	// end for this metric? Both have one good and one bad junction; use a
	// cleaner assertion: the identity on identical rows scores 1.
	same := [][]float64{{1, 2, 3}, {2, 4, 6}, {3, 6, 9}}
	if q := OrderQuality(same, []int{0, 1, 2}, PearsonDist); q < 0.999 {
		t.Fatalf("colinear rows quality = %v", q)
	}
	if q := OrderQuality(rows, []int{0}, PearsonDist); !isNaN(q) {
		t.Fatal("single-row quality should be NaN")
	}
	_ = good
}

func isNaN(f float64) bool { return f != f }

// Property: orientation never breaks permutation-ness and never reduces
// quality below the worst single-junction bound, for random trees.
func TestQuickOptimizeLeafOrder(t *testing.T) {
	f := func(seed int64, nBits uint8) bool {
		n := int(nBits%20) + 2
		rows := randomRows(seed, n, 5)
		tree, err := Hierarchical(rows, PearsonDist, AverageLinkage)
		if err != nil {
			return false
		}
		order, err := OptimizeLeafOrder(tree, rows, PearsonDist)
		if err != nil || len(order) != n {
			return false
		}
		seen := make([]bool, n)
		for _, o := range order {
			if o < 0 || o >= n || seen[o] {
				return false
			}
			seen[o] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
