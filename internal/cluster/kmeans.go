package cluster

import (
	"errors"
	"math"
	"math/rand"
)

// KMeansResult holds a flat clustering: Assign maps each row to a cluster
// in 0..K-1; Centroids are the cluster mean profiles; Inertia is the total
// within-cluster squared Euclidean distance.
type KMeansResult struct {
	K         int
	Assign    []int
	Centroids [][]float64
	Inertia   float64
}

// KMeans clusters rows into k groups with Lloyd's algorithm, restarting
// `restarts` times from k-means++ seedings and keeping the best inertia.
// Missing values are handled by computing means and distances over observed
// positions only. The RNG makes results reproducible.
func KMeans(rows [][]float64, k, restarts, maxIter int, rng *rand.Rand) (*KMeansResult, error) {
	n := len(rows)
	if n == 0 {
		return nil, errors.New("cluster: no rows")
	}
	if k < 1 || k > n {
		return nil, errors.New("cluster: k out of range")
	}
	if restarts < 1 {
		restarts = 1
	}
	if maxIter < 1 {
		maxIter = 100
	}
	var best *KMeansResult
	for r := 0; r < restarts; r++ {
		res := kmeansOnce(rows, k, maxIter, rng)
		if best == nil || res.Inertia < best.Inertia {
			best = res
		}
	}
	return best, nil
}

func kmeansOnce(rows [][]float64, k, maxIter int, rng *rand.Rand) *KMeansResult {
	n, dim := len(rows), len(rows[0])
	centroids := seedPlusPlus(rows, k, rng)
	assign := make([]int, n)
	for i := range assign {
		assign[i] = -1
	}
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, row := range rows {
			bi, bd := 0, math.Inf(1)
			for c := range centroids {
				d := sqDist(row, centroids[c])
				if d < bd {
					bd, bi = d, c
				}
			}
			if assign[i] != bi {
				assign[i] = bi
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		// Recompute centroids as per-dimension means over observed values.
		sums := make([][]float64, k)
		counts := make([][]int, k)
		members := make([]int, k)
		for c := 0; c < k; c++ {
			sums[c] = make([]float64, dim)
			counts[c] = make([]int, dim)
		}
		for i, row := range rows {
			c := assign[i]
			members[c]++
			for j, v := range row {
				if !math.IsNaN(v) {
					sums[c][j] += v
					counts[c][j]++
				}
			}
		}
		for c := 0; c < k; c++ {
			if members[c] == 0 {
				// Re-seed an empty cluster at the row farthest from its
				// centroid, the standard fix for collapse.
				far, fd := 0, -1.0
				for i, row := range rows {
					d := sqDist(row, centroids[assign[i]])
					if d > fd {
						fd, far = d, i
					}
				}
				centroids[c] = copyObserved(rows[far])
				continue
			}
			for j := 0; j < dim; j++ {
				if counts[c][j] > 0 {
					centroids[c][j] = sums[c][j] / float64(counts[c][j])
				} else {
					centroids[c][j] = 0
				}
			}
		}
	}
	inertia := 0.0
	for i, row := range rows {
		inertia += sqDist(row, centroids[assign[i]])
	}
	return &KMeansResult{K: k, Assign: assign, Centroids: centroids, Inertia: inertia}
}

// seedPlusPlus picks k initial centroids with the k-means++ D² weighting.
func seedPlusPlus(rows [][]float64, k int, rng *rand.Rand) [][]float64 {
	n := len(rows)
	centroids := make([][]float64, 0, k)
	first := 0
	if rng != nil {
		first = rng.Intn(n)
	}
	centroids = append(centroids, copyObserved(rows[first]))
	d2 := make([]float64, n)
	for len(centroids) < k {
		total := 0.0
		for i, row := range rows {
			best := math.Inf(1)
			for _, c := range centroids {
				if d := sqDist(row, c); d < best {
					best = d
				}
			}
			d2[i] = best
			total += best
		}
		var pick int
		if total == 0 || rng == nil {
			pick = len(centroids) % n
		} else {
			target := rng.Float64() * total
			acc := 0.0
			pick = n - 1
			for i, d := range d2 {
				acc += d
				if acc >= target {
					pick = i
					break
				}
			}
		}
		centroids = append(centroids, copyObserved(rows[pick]))
	}
	return centroids
}

// sqDist is squared Euclidean distance over observed pairs, rescaled for
// missingness like stats.Euclidean.
func sqDist(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	ss, cnt := 0.0, 0
	for i := 0; i < n; i++ {
		if math.IsNaN(a[i]) || math.IsNaN(b[i]) {
			continue
		}
		d := a[i] - b[i]
		ss += d * d
		cnt++
	}
	if cnt == 0 {
		return math.MaxFloat64
	}
	return ss * float64(n) / float64(cnt)
}

func copyObserved(row []float64) []float64 {
	out := make([]float64, len(row))
	for i, v := range row {
		if math.IsNaN(v) {
			out[i] = 0
		} else {
			out[i] = v
		}
	}
	return out
}

// Silhouette returns the mean silhouette coefficient of a flat clustering
// under the given metric — the cluster-quality score used by the ablation
// benchmarks. Values near 1 indicate tight, well-separated clusters.
func Silhouette(rows [][]float64, assign []int, metric Metric) float64 {
	n := len(rows)
	if n != len(assign) || n < 2 {
		return math.NaN()
	}
	// Precompute cluster membership lists.
	clusters := make(map[int][]int)
	for i, c := range assign {
		clusters[c] = append(clusters[c], i)
	}
	if len(clusters) < 2 {
		return math.NaN()
	}
	total, cnt := 0.0, 0
	for i := 0; i < n; i++ {
		own := clusters[assign[i]]
		if len(own) <= 1 {
			continue // silhouette undefined for singletons
		}
		a := 0.0
		for _, j := range own {
			if j != i {
				a += metric.Distance(rows[i], rows[j])
			}
		}
		a /= float64(len(own) - 1)
		b := math.Inf(1)
		for c, members := range clusters {
			if c == assign[i] {
				continue
			}
			s := 0.0
			for _, j := range members {
				s += metric.Distance(rows[i], rows[j])
			}
			s /= float64(len(members))
			if s < b {
				b = s
			}
		}
		den := math.Max(a, b)
		if den > 0 {
			total += (b - a) / den
			cnt++
		}
	}
	if cnt == 0 {
		return math.NaN()
	}
	return total / float64(cnt)
}
