package cluster

import (
	"context"
	"errors"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"forestview/internal/stats"
)

// This file is the clustering kernel: the exact O(n²) replacement for the
// O(n³)-worst-case reference path, in two stages.
//
// Stage 1 builds the condensed distance matrix in parallel. Rows are dealt
// round-robin across GOMAXPROCS workers (triangular row i holds i pairs, so
// striding keeps shard costs within one row of each other), and each worker
// writes a disjoint slice of the flat matrix — no locks, no false-sharing
// hot spots beyond cache-line edges. For the correlation metrics the pairs
// take the same dense fast path as the SPELL scoring kernel: each complete
// row is preprocessed once into a centered (or, for the uncentered metric,
// merely scaled) unit-Euclidean-norm form held in one contiguous slab, after
// which the correlation of two such rows is exactly stats.Dot — no means, no
// variances, no NaN checks in the O(n²) loop. Rows with missing values fail
// the preprocessing mask and fall back pairwise to Metric.Distance, whose
// statistics are pairwise-complete, so missing-value semantics are exactly
// those of the reference path.
//
// Stage 2 agglomerates by nearest-neighbor chain (Müllner 2011): grow a
// chain slot → nearest neighbour → ... until two clusters are each other's
// nearest neighbour, merge them, and continue from the remaining chain. For
// the reducible Lance-Williams updates used here (single, complete,
// average) a merge never invalidates the rest of the chain, every
// reciprocal pair found this way is a merge of the greedy
// globally-closest-pair algorithm, and merge heights are monotone — so
// sorting the discovered merges by height reproduces the reference tree
// exactly (up to the order of tied merges) in O(n²) total time.

// Hierarchical builds a dendrogram over the rows using the given metric and
// linkage: a parallel distance-matrix build followed by exact
// nearest-neighbor-chain agglomeration. It produces the same tree as
// ReferenceHierarchical (see the parity tests) at a fraction of the cost;
// the before/after table in README.md quantifies the gap.
func Hierarchical(rows [][]float64, metric Metric, linkage Linkage) (*Tree, error) {
	return HierarchicalCtx(context.Background(), rows, metric, linkage)
}

// HierarchicalCtx is Hierarchical honoring cancellation: both the distance
// build and the agglomeration poll ctx and abandon the computation with
// ctx's error once it is done. The query daemon threads request contexts
// through here so a disconnected client stops paying for its tree build.
func HierarchicalCtx(ctx context.Context, rows [][]float64, metric Metric, linkage Linkage) (*Tree, error) {
	n := len(rows)
	if n == 0 {
		return nil, errors.New("cluster: no rows")
	}
	t := &Tree{NLeaves: n}
	if n == 1 {
		return t, nil
	}
	dist, err := buildDistances(ctx, rows, metric)
	if err != nil {
		return nil, err
	}
	return nnChain(ctx, n, dist, linkage)
}

// pairKernel evaluates one metric over row pairs, with a dense fast path
// for rows that admit a precomputed unit form and a pairwise-complete
// fallback (Metric.Distance) for rows with missing values — the same
// two-tier discipline as the SPELL scoring kernel, so NaN-bearing
// microarray rows cannot poison the tree.
type pairKernel struct {
	metric Metric
	rows   [][]float64
	dim    int       // common row length; 0 when rows are ragged (no fast path)
	unit   []float64 // contiguous per-row unit forms (correlation metrics)
	fast   []bool    // unit form exists for row i
	whole  []bool    // row i has no missing values (distance metrics)
}

func newPairKernel(rows [][]float64, metric Metric) *pairKernel {
	k := &pairKernel{metric: metric, rows: rows}
	dim := len(rows[0])
	for _, r := range rows {
		if len(r) != dim {
			return k // ragged input: every pair falls back
		}
	}
	if dim == 0 {
		return k
	}
	k.dim = dim
	n := len(rows)
	switch metric {
	case PearsonDist, PearsonAbsDist, UncenteredDist, SpearmanDist:
		k.unit = make([]float64, n*dim)
		k.fast = make([]bool, n)
		for i, row := range rows {
			dst := k.unit[i*dim : (i+1)*dim]
			switch metric {
			case UncenteredDist:
				k.fast[i] = stats.UnitNormInto(dst, row)
			case SpearmanDist:
				// Spearman is Pearson of mid-ranks, but only complete rows
				// keep that identity pairwise: a missing value changes the
				// partner's paired ranks too, so masked rows fall back.
				if rowComplete(row) {
					k.fast[i] = stats.CenterUnitNormInto(dst, stats.Ranks(row))
				}
			default:
				k.fast[i] = stats.CenterUnitNormInto(dst, row)
			}
		}
	case EuclideanDist, ManhattanDist:
		k.whole = make([]bool, n)
		for i, row := range rows {
			k.whole[i] = rowComplete(row)
		}
	}
	return k
}

// dist returns the metric distance between rows i and j.
func (k *pairKernel) dist(i, j int) float64 {
	switch k.metric {
	case PearsonDist, PearsonAbsDist, UncenteredDist, SpearmanDist:
		if k.fast != nil && k.fast[i] && k.fast[j] {
			r := stats.Dot(k.unit[i*k.dim:(i+1)*k.dim], k.unit[j*k.dim:(j+1)*k.dim])
			// Guard against floating-point drift outside [-1, 1], like
			// stats.Pearson does.
			if r > 1 {
				r = 1
			} else if r < -1 {
				r = -1
			}
			if k.metric == PearsonAbsDist {
				return 1 - math.Abs(r)
			}
			return 1 - r
		}
	case EuclideanDist:
		if k.whole != nil && k.whole[i] && k.whole[j] {
			a, b := k.rows[i], k.rows[j][:k.dim]
			var ss float64
			for x, v := range a {
				d := v - b[x]
				ss += d * d
			}
			return math.Sqrt(ss)
		}
	case ManhattanDist:
		if k.whole != nil && k.whole[i] && k.whole[j] {
			a, b := k.rows[i], k.rows[j][:k.dim]
			var s float64
			for x, v := range a {
				s += math.Abs(v - b[x])
			}
			return s
		}
	}
	return k.metric.Distance(k.rows[i], k.rows[j])
}

func rowComplete(row []float64) bool {
	for _, v := range row {
		if math.IsNaN(v) {
			return false
		}
	}
	return true
}

// buildDistances fills the condensed distance matrix in parallel,
// worker-sharded by triangular row.
func buildDistances(ctx context.Context, rows [][]float64, metric Metric) (*triMatrix, error) {
	n := len(rows)
	k := newPairKernel(rows, metric)
	dist := newTriMatrix(n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n-1 {
		workers = n - 1
	}
	if workers < 1 {
		workers = 1
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 1 + w; i < n; i += workers {
				if stop.Load() {
					return
				}
				if ctx.Err() != nil {
					stop.Store(true)
					return
				}
				out := dist.v[i*(i-1)/2 : i*(i-1)/2+i]
				for j := range out {
					out[j] = k.dist(i, j)
				}
			}
		}(w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return dist, nil
}

// nnChain agglomerates the condensed matrix by nearest-neighbor chain and
// relabels the discovered merges into the reference node-numbering
// convention (merges in nondecreasing height order, clusters represented by
// their smallest leaf). It consumes dist as scratch space.
//
// Two matrix disciplines keep the chain phase cheap. Dead slots are
// tombstoned: a merge overwrites the dying slot's entries with +Inf in the
// same pass that applies the Lance-Williams update, so the nearest-
// neighbour scans need no per-element liveness test — +Inf can never win a
// strict comparison. And when more than half the slots are dead, the
// matrix is compacted onto the survivors: scans walk the (shrinking)
// current width, and once the live matrix fits in cache the strided
// upper-triangle reads stop missing. Discarding the chain at a compaction
// is sound — any chain rebuilt from current nearest neighbours finds a
// reciprocal pair of the same agglomeration.
func nnChain(ctx context.Context, n int, dist *triMatrix, linkage Linkage) (*Tree, error) {
	type rawMerge struct {
		a, b int // original cluster representatives (smallest leaf), a < b
		h    float64
	}
	raw := make([]rawMerge, 0, n-1)
	cur := n // current matrix width (shrinks at compactions)
	active := make([]bool, n)
	size := make([]int, n)
	orig := make([]int, n) // slot -> smallest original leaf of its cluster
	for i := range active {
		active[i], size[i], orig[i] = true, 1, i
	}
	live := n
	first := 0 // smallest possibly-active slot, advanced lazily
	chain := make([]int, 0, 64)
	for len(raw) < n-1 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if len(chain) == 0 {
			for !active[first] {
				first++
			}
			chain = append(chain, first)
		}
		for {
			top := chain[len(chain)-1]
			prev := -1
			best, bd := -1, math.Inf(1)
			if len(chain) > 1 {
				// The previous chain element seeds the scan and wins ties,
				// so a reciprocal pair is always detected and the chain's
				// distances strictly decrease — the termination argument.
				prev = chain[len(chain)-2]
				best, bd = prev, dist.at(top, prev)
			}
			// Nearest-neighbour scan, split at the diagonal so the j < top
			// half streams through row `top` contiguously and the j > top
			// half advances its flat index incrementally (idx(j+1) =
			// idx(j) + j) — this loop is the kernel's agglomeration cost.
			// Dead slots and prev need no per-element test: dead entries
			// are +Inf, and prev — the seeded incumbent — can only tie its
			// own entry, so prev wins ties, the property the termination
			// argument needs.
			row := dist.v[top*(top-1)/2:]
			for j := 0; j < top; j++ {
				if d := row[j]; d < bd {
					bd, best = d, j
				}
			}
			idx := top*(top+1)/2 + top
			for j := top + 1; j < cur; j++ {
				if d := dist.v[idx]; d < bd {
					bd, best = d, j
				}
				idx += j
			}
			if best < 0 {
				// Every remaining distance is +Inf (pathological input,
				// e.g. ±Inf expression values): any live partner will do.
				for j := first; j < cur; j++ {
					if active[j] && j != top {
						best, bd = j, dist.at(top, j)
						break
					}
				}
			}
			if best == prev && prev >= 0 {
				// Reciprocal nearest neighbours: merge b into a with the
				// same Lance-Williams arithmetic as the reference (bitwise,
				// for height parity — the hoisted weights evaluate the
				// identical expression the reference computes per pair).
				a, b := prev, top
				if a > b {
					a, b = b, a
				}
				ra, rb := orig[a], orig[b]
				if ra > rb {
					ra, rb = rb, ra
				}
				raw = append(raw, rawMerge{a: ra, b: rb, h: bd})
				var combine func(da, db float64) float64
				switch linkage {
				case AverageLinkage:
					wa := float64(size[a]) / float64(size[a]+size[b])
					wb := float64(size[b]) / float64(size[a]+size[b])
					combine = func(da, db float64) float64 { return wa*da + wb*db }
				case CompleteLinkage:
					combine = math.Max
				default:
					combine = math.Min
				}
				// Walk the triangle like the scan: row a and row b are
				// contiguous below their diagonals, flat indices advance by
				// j beyond them. Slot b's entries are tombstoned to +Inf in
				// the same pass so future scans skip the dead slot for
				// free; dead-pair entries are already +Inf on both sides
				// and combine to +Inf again (the weights are positive, so
				// no Inf-Inf or 0·Inf can make a NaN).
				inf := math.Inf(1)
				rowA := dist.v[a*(a-1)/2:]
				rowB := dist.v[b*(b-1)/2:]
				for j := 0; j < a; j++ {
					rowA[j] = combine(rowA[j], rowB[j])
					rowB[j] = inf
				}
				idxA := a*(a+1)/2 + a // idx(a, a+1)
				for j := a + 1; j < b; j++ {
					dist.v[idxA] = combine(dist.v[idxA], rowB[j])
					rowB[j] = inf
					idxA += j
				}
				dist.v[idxA] = inf // the a↔b entry dies with b
				idxA += b
				idxB := b*(b+1)/2 + b
				for j := b + 1; j < cur; j++ {
					dist.v[idxA] = combine(dist.v[idxA], dist.v[idxB])
					dist.v[idxB] = inf
					idxA += j
					idxB += j
				}
				active[b] = false
				size[a] += size[b]
				orig[a] = ra
				live--
				chain = chain[:len(chain)-2]
				if 2*live < cur && live > 32 {
					// Compact the matrix onto the survivors, preserving
					// slot order (so representative-slot reasoning is
					// unaffected), and restart the chain.
					k := 0
					for s := 0; s < cur; s++ {
						if !active[s] {
							continue
						}
						// New row k gathers the live columns of old row s;
						// both sides walk forward, so reads and writes stay
						// in order.
						oldRow := dist.v[s*(s-1)/2 : s*(s-1)/2+s]
						newRow := dist.v[k*(k-1)/2:]
						c := 0
						for j := 0; j < s; j++ {
							if active[j] {
								newRow[c] = oldRow[j]
								c++
							}
						}
						size[k], orig[k] = size[s], orig[s]
						k++
					}
					cur = k
					for s := 0; s < cur; s++ {
						active[s] = true
					}
					first = 0
					chain = chain[:0]
				}
				break
			}
			chain = append(chain, best)
		}
	}
	// Merges were discovered chain-by-chain, not globally height-ordered.
	// The linkages here are monotone (a child merge never sits above its
	// parent), and discovery order respects the tree's partial order, so a
	// stable sort by height processes every child before its parent even
	// through ties.
	sort.SliceStable(raw, func(i, j int) bool { return raw[i].h < raw[j].h })
	parent := make([]int, n)
	node := make([]int, n) // cluster representative -> current tree node ID
	for i := range parent {
		parent[i], node[i] = i, i
	}
	find := func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	t := &Tree{NLeaves: n, Merges: make([]Merge, 0, n-1)}
	for step, m := range raw {
		ra, rb := find(m.a), find(m.b)
		if ra > rb {
			ra, rb = rb, ra
		}
		t.Merges = append(t.Merges, Merge{A: node[ra], B: node[rb], Height: m.h})
		parent[rb] = ra
		node[ra] = n + step
	}
	return t, nil
}
