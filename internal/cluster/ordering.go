package cluster

import (
	"fmt"
	"math"
)

// A dendrogram fixes which leaves are siblings but not the left/right
// orientation of each merge: every internal node can be flipped, giving
// 2^(n-1) equivalent orders. TreeView-family displays look dramatically
// better when adjacent rows are similar across subtree boundaries, so this
// file implements the Gruvaeus-Wainer style greedy orientation pass: at
// each merge, pick the orientation of the two child blocks that minimizes
// the distance between the facing boundary leaves. The ablation bench
// (AblationLeafOrdering) quantifies the improvement.

// OptimizeLeafOrder returns a leaf order for t with per-merge orientations
// chosen to minimize boundary distances under the metric. rows must be the
// leaf data (rows[i] for leaf i).
func OptimizeLeafOrder(t *Tree, rows [][]float64, metric Metric) ([]int, error) {
	if t == nil || t.NLeaves == 0 {
		return nil, fmt.Errorf("cluster: empty tree")
	}
	if len(rows) < t.NLeaves {
		return nil, fmt.Errorf("cluster: %d rows for %d leaves", len(rows), t.NLeaves)
	}
	if t.NLeaves == 1 {
		return []int{0}, nil
	}
	// block[i] is the ordered leaf list of node i (leaves then merges).
	blocks := make([][]int, t.NLeaves+len(t.Merges))
	for leaf := 0; leaf < t.NLeaves; leaf++ {
		blocks[leaf] = []int{leaf}
	}
	dist := func(a, b int) float64 { return metric.Distance(rows[a], rows[b]) }
	for i, m := range t.Merges {
		a, b := blocks[m.A], blocks[m.B]
		// Boundary leaves of each child block in its current orientation.
		aL, aR := a[0], a[len(a)-1]
		bL, bR := b[0], b[len(b)-1]
		// Four orientations; cost is the distance across the junction.
		type option struct {
			flipA, flipB bool
			cost         float64
		}
		options := []option{
			{false, false, dist(aR, bL)},
			{true, false, dist(aL, bL)},
			{false, true, dist(aR, bR)},
			{true, true, dist(aL, bR)},
		}
		best := options[0]
		for _, o := range options[1:] {
			if o.cost < best.cost {
				best = o
			}
		}
		left := a
		if best.flipA {
			left = reversed(a)
		}
		right := b
		if best.flipB {
			right = reversed(b)
		}
		merged := make([]int, 0, len(left)+len(right))
		merged = append(merged, left...)
		merged = append(merged, right...)
		blocks[t.NLeaves+i] = merged
	}
	return blocks[t.Root()], nil
}

func reversed(xs []int) []int {
	out := make([]int, len(xs))
	for i, v := range xs {
		out[len(xs)-1-i] = v
	}
	return out
}

// OrderQuality scores a display order: the mean similarity (1 - distance,
// for correlation metrics) between adjacent rows. Higher is better; it is
// the objective the orientation pass improves.
func OrderQuality(rows [][]float64, order []int, metric Metric) float64 {
	if len(order) < 2 {
		return math.NaN()
	}
	s, n := 0.0, 0
	for i := 1; i < len(order); i++ {
		d := metric.Distance(rows[order[i-1]], rows[order[i]])
		if d == math.MaxFloat64 {
			continue
		}
		s += 1 - d
		n++
	}
	if n == 0 {
		return math.NaN()
	}
	return s / float64(n)
}
