package ontology

import "sort"

// Annotations maps genes to the ontology terms they are directly annotated
// to. The true-path rule of GO — a gene annotated to a term is implicitly
// annotated to every ancestor — is applied by Propagate.
type Annotations struct {
	direct map[string]map[string]bool // gene -> term set
	genes  []string                   // insertion order
}

// NewAnnotations returns an empty annotation set.
func NewAnnotations() *Annotations {
	return &Annotations{direct: make(map[string]map[string]bool)}
}

// Add records that gene is annotated to term.
func (a *Annotations) Add(gene, term string) {
	set, ok := a.direct[gene]
	if !ok {
		set = make(map[string]bool)
		a.direct[gene] = set
		a.genes = append(a.genes, gene)
	}
	set[term] = true
}

// Genes returns the annotated gene IDs in insertion order.
func (a *Annotations) Genes() []string { return append([]string(nil), a.genes...) }

// TermsOf returns the direct terms of gene, sorted.
func (a *Annotations) TermsOf(gene string) []string {
	set := a.direct[gene]
	out := make([]string, 0, len(set))
	for t := range set {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of annotated genes.
func (a *Annotations) Len() int { return len(a.genes) }

// Propagate returns a new annotation set where every gene also carries all
// ancestors of its direct terms (the GO true-path rule). Enrichment must
// run on propagated annotations or parent terms would be undercounted.
func (a *Annotations) Propagate(o *Ontology) *Annotations {
	out := NewAnnotations()
	ancCache := make(map[string][]string)
	for _, gene := range a.genes {
		for term := range a.direct[gene] {
			out.Add(gene, term)
			anc, ok := ancCache[term]
			if !ok {
				anc = o.Ancestors(term)
				ancCache[term] = anc
			}
			for _, t := range anc {
				out.Add(gene, t)
			}
		}
	}
	return out
}

// GenesPerTerm inverts the mapping: term -> set of genes annotated to it.
func (a *Annotations) GenesPerTerm() map[string]map[string]bool {
	out := make(map[string]map[string]bool)
	for _, gene := range a.genes {
		for term := range a.direct[gene] {
			set, ok := out[term]
			if !ok {
				set = make(map[string]bool)
				out[term] = set
			}
			set[gene] = true
		}
	}
	return out
}

// Has reports whether gene is annotated to term.
func (a *Annotations) Has(gene, term string) bool {
	return a.direct[gene][term]
}
