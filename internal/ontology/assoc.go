package ontology

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Gene-association files map genes to terms, one pair per line:
//
//	YAL001C	GO:0008150
//
// This is a minimal cousin of the GO Consortium's GAF format carrying just
// the columns the tool chain uses. Lines starting with '!' or '#' are
// comments, as in GAF.

// ReadAssociations parses an association stream into direct annotations.
func ReadAssociations(r io.Reader) (*Annotations, error) {
	a := NewAnnotations()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "!") || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(fields) < 2 {
			return nil, fmt.Errorf("ontology: association line %d has %d fields, want 2", lineNo, len(fields))
		}
		gene := strings.TrimSpace(fields[0])
		term := strings.TrimSpace(fields[1])
		if gene == "" || term == "" {
			return nil, fmt.Errorf("ontology: association line %d has empty field", lineNo)
		}
		a.Add(gene, term)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ontology: reading associations: %w", err)
	}
	return a, nil
}

// WriteAssociations serializes annotations, genes in insertion order, terms
// sorted per gene.
func WriteAssociations(w io.Writer, a *Annotations) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "! gene associations")
	genes := a.Genes()
	sort.Strings(genes)
	for _, g := range genes {
		for _, t := range a.TermsOf(g) {
			fmt.Fprintf(bw, "%s\t%s\n", g, t)
		}
	}
	return bw.Flush()
}
