package ontology

import (
	"fmt"
	"math/rand"
	"sort"
)

// SyntheticSpec parameterizes the synthetic GO builder.
type SyntheticSpec struct {
	// LeafNames become the leaf terms (e.g. the module names of a
	// synth.Universe, so ground-truth enrichment is known).
	LeafNames []string
	// IntermediateLevels inserts this many layers of grouping terms
	// between the root and the leaves (default 2).
	IntermediateLevels int
	// FanOut is the approximate number of children per intermediate term
	// (default 4).
	FanOut int
	// MultiParentFraction is the fraction of terms given a second parent,
	// making the graph a proper DAG rather than a tree (default 0.2).
	MultiParentFraction float64
	// Seed drives all randomness.
	Seed int64
}

// Synthetic builds a GO-like DAG: a biological_process root, layered
// intermediate terms, and one leaf term per LeafName. Term IDs follow the
// GO accession format. The returned map gives LeafName -> leaf term ID so
// callers can wire gene annotations to ground truth.
func Synthetic(spec SyntheticSpec) (*Ontology, map[string]string, error) {
	if len(spec.LeafNames) == 0 {
		return nil, nil, fmt.Errorf("ontology: synthetic GO needs at least one leaf name")
	}
	if spec.IntermediateLevels <= 0 {
		spec.IntermediateLevels = 2
	}
	if spec.FanOut <= 1 {
		spec.FanOut = 4
	}
	if spec.MultiParentFraction < 0 || spec.MultiParentFraction >= 1 {
		spec.MultiParentFraction = 0.2
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	o := New()
	next := 8150 // start near the real biological_process accession
	newID := func() string {
		id := fmt.Sprintf("GO:%07d", next)
		next++
		return id
	}

	root := &Term{ID: newID(), Name: "biological_process", Namespace: "biological_process"}
	if err := o.AddTerm(root); err != nil {
		return nil, nil, err
	}

	// Build intermediate layers top-down.
	prev := []string{root.ID}
	for lvl := 0; lvl < spec.IntermediateLevels; lvl++ {
		// Enough nodes that the bottom layer can parent every leaf with
		// roughly FanOut leaves each.
		want := len(spec.LeafNames) / pow(spec.FanOut, spec.IntermediateLevels-lvl)
		if want < len(prev) {
			want = len(prev)
		}
		if want < 2 {
			want = 2
		}
		layer := make([]string, 0, want)
		for i := 0; i < want; i++ {
			t := &Term{
				ID:        newID(),
				Name:      fmt.Sprintf("process group L%d.%d", lvl+1, i+1),
				Namespace: "biological_process",
				Parents:   []string{prev[rng.Intn(len(prev))]},
			}
			if rng.Float64() < spec.MultiParentFraction && len(prev) > 1 {
				p2 := prev[rng.Intn(len(prev))]
				if p2 != t.Parents[0] {
					t.Parents = append(t.Parents, p2)
				}
			}
			if err := o.AddTerm(t); err != nil {
				return nil, nil, err
			}
			layer = append(layer, t.ID)
		}
		prev = layer
	}

	leafOf := make(map[string]string, len(spec.LeafNames))
	for _, name := range spec.LeafNames {
		t := &Term{
			ID:        newID(),
			Name:      name,
			Namespace: "biological_process",
			Parents:   []string{prev[rng.Intn(len(prev))]},
		}
		if rng.Float64() < spec.MultiParentFraction && len(prev) > 1 {
			p2 := prev[rng.Intn(len(prev))]
			if p2 != t.Parents[0] {
				t.Parents = append(t.Parents, p2)
			}
		}
		if err := o.AddTerm(t); err != nil {
			return nil, nil, err
		}
		leafOf[name] = t.ID
	}
	if err := o.Validate(); err != nil {
		return nil, nil, err
	}
	return o, leafOf, nil
}

func pow(b, e int) int {
	out := 1
	for i := 0; i < e; i++ {
		out *= b
	}
	return out
}

// AnnotateFromModules converts gene->module-name assignments (the output of
// synth.Universe.Annotations) into direct ontology annotations using the
// leafOf map returned by Synthetic.
func AnnotateFromModules(genes map[string][]string, leafOf map[string]string) *Annotations {
	a := NewAnnotations()
	// Deterministic iteration: sort gene IDs.
	ids := make([]string, 0, len(genes))
	for g := range genes {
		ids = append(ids, g)
	}
	sort.Strings(ids)
	for _, g := range ids {
		for _, mod := range genes[g] {
			if term, ok := leafOf[mod]; ok {
				a.Add(g, term)
			}
		}
	}
	return a
}
