package ontology

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"
)

// ReadOBO parses the OBO 1.2 flat format the GO Consortium distributes.
// Only the fields the tool chain uses are retained: id, name, namespace,
// is_a, relationship: part_of, is_obsolete. Unknown tags are ignored, as
// OBO consumers are expected to do.
func ReadOBO(r io.Reader) (*Ontology, error) {
	o := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	var cur *Term
	inTerm := false
	flush := func() error {
		if cur != nil {
			if err := o.AddTerm(cur); err != nil {
				return err
			}
		}
		cur = nil
		return nil
	}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "[Term]":
			if err := flush(); err != nil {
				return nil, err
			}
			cur = &Term{}
			inTerm = true
			continue
		case strings.HasPrefix(line, "[") && strings.HasSuffix(line, "]"):
			// Other stanza types ([Typedef] etc.) end the current term.
			if err := flush(); err != nil {
				return nil, err
			}
			inTerm = false
			continue
		case line == "" || strings.HasPrefix(line, "!"):
			continue
		}
		if !inTerm || cur == nil {
			continue
		}
		key, val, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		val = strings.TrimSpace(val)
		// Strip trailing OBO comments ("GO:0008150 ! biological_process").
		if i := strings.Index(val, "!"); i >= 0 {
			val = strings.TrimSpace(val[:i])
		}
		switch strings.TrimSpace(key) {
		case "id":
			cur.ID = val
		case "name":
			cur.Name = val
		case "namespace":
			cur.Namespace = val
		case "is_a":
			cur.Parents = append(cur.Parents, val)
		case "relationship":
			// "relationship: part_of GO:0044237".
			parts := strings.Fields(val)
			if len(parts) == 2 && parts[0] == "part_of" {
				cur.Parents = append(cur.Parents, parts[1])
			}
		case "is_obsolete":
			cur.Obsolete = strings.EqualFold(val, "true")
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("ontology: reading OBO: %w", err)
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if err := o.Validate(); err != nil {
		return nil, err
	}
	return o, nil
}

// WriteOBO serializes the ontology in OBO format, terms in insertion order.
func WriteOBO(w io.Writer, o *Ontology) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "format-version: 1.2\n")
	for _, id := range o.ordered {
		t := o.terms[id]
		fmt.Fprintf(bw, "\n[Term]\nid: %s\nname: %s\n", t.ID, t.Name)
		if t.Namespace != "" {
			fmt.Fprintf(bw, "namespace: %s\n", t.Namespace)
		}
		parents := append([]string(nil), t.Parents...)
		sort.Strings(parents)
		for _, p := range parents {
			pn := ""
			if pt := o.terms[p]; pt != nil {
				pn = " ! " + pt.Name
			}
			fmt.Fprintf(bw, "is_a: %s%s\n", p, pn)
		}
		if t.Obsolete {
			fmt.Fprintf(bw, "is_obsolete: true\n")
		}
	}
	return bw.Flush()
}
