package ontology

import (
	"bytes"
	"strings"
	"testing"
)

// diamond builds the classic DAG:
//
//	  root
//	 /    \
//	a      b
//	 \    /
//	  leaf
func diamond(t *testing.T) *Ontology {
	t.Helper()
	o := New()
	for _, term := range []*Term{
		{ID: "GO:1", Name: "root", Namespace: "biological_process"},
		{ID: "GO:2", Name: "a", Parents: []string{"GO:1"}},
		{ID: "GO:3", Name: "b", Parents: []string{"GO:1"}},
		{ID: "GO:4", Name: "leaf", Parents: []string{"GO:2", "GO:3"}},
	} {
		if err := o.AddTerm(term); err != nil {
			t.Fatal(err)
		}
	}
	return o
}

func TestAddTermAndLookup(t *testing.T) {
	o := diamond(t)
	if o.Len() != 4 {
		t.Fatalf("Len = %d", o.Len())
	}
	if o.Term("GO:2").Name != "a" {
		t.Fatalf("term = %+v", o.Term("GO:2"))
	}
	if o.Term("GO:99") != nil {
		t.Fatal("unknown term should be nil")
	}
	if err := o.AddTerm(&Term{}); err == nil {
		t.Fatal("empty ID should error")
	}
}

func TestAddTermReplace(t *testing.T) {
	o := diamond(t)
	// Re-add GO:4 with a single parent; the old GO:3 edge must disappear.
	if err := o.AddTerm(&Term{ID: "GO:4", Name: "leaf2", Parents: []string{"GO:2"}}); err != nil {
		t.Fatal(err)
	}
	if o.Len() != 4 {
		t.Fatalf("replace grew ontology: %d", o.Len())
	}
	kids := o.Children("GO:3")
	if len(kids) != 0 {
		t.Fatalf("GO:3 children = %v, want none", kids)
	}
	anc := o.Ancestors("GO:4")
	if len(anc) != 2 { // GO:2 and GO:1
		t.Fatalf("ancestors = %v", anc)
	}
}

func TestAncestorsDescendants(t *testing.T) {
	o := diamond(t)
	anc := o.Ancestors("GO:4")
	if len(anc) != 3 {
		t.Fatalf("leaf ancestors = %v", anc)
	}
	if anc[0] != "GO:1" || anc[1] != "GO:2" || anc[2] != "GO:3" {
		t.Fatalf("leaf ancestors = %v", anc)
	}
	desc := o.Descendants("GO:1")
	if len(desc) != 3 {
		t.Fatalf("root descendants = %v", desc)
	}
	if o.Ancestors("GO:99") != nil || o.Descendants("GO:99") != nil {
		t.Fatal("unknown IDs should yield nil")
	}
	if len(o.Ancestors("GO:1")) != 0 {
		t.Fatal("root has no ancestors")
	}
}

func TestRootsAndDepth(t *testing.T) {
	o := diamond(t)
	roots := o.Roots()
	if len(roots) != 1 || roots[0] != "GO:1" {
		t.Fatalf("roots = %v", roots)
	}
	if d := o.Depth("GO:1"); d != 0 {
		t.Fatalf("root depth = %d", d)
	}
	if d := o.Depth("GO:4"); d != 2 {
		t.Fatalf("leaf depth = %d", d)
	}
	if d := o.Depth("GO:99"); d != -1 {
		t.Fatalf("unknown depth = %d", d)
	}
}

func TestValidate(t *testing.T) {
	o := diamond(t)
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	// Dangling parent.
	bad := New()
	_ = bad.AddTerm(&Term{ID: "GO:1", Parents: []string{"GO:404"}})
	if err := bad.Validate(); err == nil {
		t.Fatal("dangling parent should fail")
	}
	// Cycle.
	cyc := New()
	_ = cyc.AddTerm(&Term{ID: "A", Parents: []string{"B"}})
	_ = cyc.AddTerm(&Term{ID: "B", Parents: []string{"A"}})
	if err := cyc.Validate(); err == nil {
		t.Fatal("cycle should fail")
	}
}

func TestTopologicalOrder(t *testing.T) {
	o := diamond(t)
	order, err := o.TopologicalOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[string]int)
	for i, id := range order {
		pos[id] = i
	}
	for _, id := range o.TermIDs() {
		for _, p := range o.Parents(id) {
			if pos[p] > pos[id] {
				t.Fatalf("parent %s after child %s in %v", p, id, order)
			}
		}
	}
	cyc := New()
	_ = cyc.AddTerm(&Term{ID: "A", Parents: []string{"B"}})
	_ = cyc.AddTerm(&Term{ID: "B", Parents: []string{"A"}})
	if _, err := cyc.TopologicalOrder(); err == nil {
		t.Fatal("cycle should fail topological sort")
	}
}

const sampleOBO = `format-version: 1.2
date: 01:01:2007

[Term]
id: GO:0008150
name: biological_process
namespace: biological_process

[Term]
id: GO:0006950
name: response to stress
namespace: biological_process
is_a: GO:0008150 ! biological_process

[Term]
id: GO:0009408
name: response to heat
namespace: biological_process
is_a: GO:0006950 ! response to stress
relationship: part_of GO:0008150

[Term]
id: GO:0000001
name: obsolete thing
is_obsolete: true

[Typedef]
id: part_of
name: part of
`

func TestReadOBO(t *testing.T) {
	o, err := ReadOBO(strings.NewReader(sampleOBO))
	if err != nil {
		t.Fatal(err)
	}
	if o.Len() != 4 {
		t.Fatalf("terms = %d", o.Len())
	}
	heat := o.Term("GO:0009408")
	if heat == nil || heat.Name != "response to heat" {
		t.Fatalf("heat = %+v", heat)
	}
	// is_a + part_of both captured as parents.
	if len(heat.Parents) != 2 {
		t.Fatalf("heat parents = %v", heat.Parents)
	}
	if !o.Term("GO:0000001").Obsolete {
		t.Fatal("obsolete flag lost")
	}
	// Obsolete, parentless terms are not roots.
	roots := o.Roots()
	if len(roots) != 1 || roots[0] != "GO:0008150" {
		t.Fatalf("roots = %v", roots)
	}
}

func TestOBORoundTrip(t *testing.T) {
	o, err := ReadOBO(strings.NewReader(sampleOBO))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteOBO(&buf, o); err != nil {
		t.Fatal(err)
	}
	back, err := ReadOBO(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != o.Len() {
		t.Fatalf("round trip lost terms: %d vs %d", back.Len(), o.Len())
	}
	for _, id := range o.TermIDs() {
		a, b := o.Term(id), back.Term(id)
		if b == nil {
			t.Fatalf("term %s lost", id)
		}
		if a.Name != b.Name || a.Obsolete != b.Obsolete || len(a.Parents) != len(b.Parents) {
			t.Fatalf("term %s changed: %+v vs %+v", id, a, b)
		}
	}
}

func TestReadOBOBadParent(t *testing.T) {
	in := "[Term]\nid: GO:1\nname: x\nis_a: GO:404\n"
	if _, err := ReadOBO(strings.NewReader(in)); err == nil {
		t.Fatal("dangling is_a should fail validation")
	}
}

func TestAnnotationsBasics(t *testing.T) {
	a := NewAnnotations()
	a.Add("g1", "GO:4")
	a.Add("g1", "GO:4") // duplicate is idempotent
	a.Add("g2", "GO:2")
	if a.Len() != 2 {
		t.Fatalf("Len = %d", a.Len())
	}
	if terms := a.TermsOf("g1"); len(terms) != 1 || terms[0] != "GO:4" {
		t.Fatalf("TermsOf = %v", terms)
	}
	if !a.Has("g1", "GO:4") || a.Has("g1", "GO:2") {
		t.Fatal("Has misbehaves")
	}
	genes := a.Genes()
	if len(genes) != 2 || genes[0] != "g1" {
		t.Fatalf("Genes = %v", genes)
	}
}

func TestAnnotationsPropagate(t *testing.T) {
	o := diamond(t)
	a := NewAnnotations()
	a.Add("g1", "GO:4")
	p := a.Propagate(o)
	// g1 must now carry GO:4 and all ancestors GO:2, GO:3, GO:1.
	terms := p.TermsOf("g1")
	if len(terms) != 4 {
		t.Fatalf("propagated terms = %v", terms)
	}
	// The original is untouched.
	if len(a.TermsOf("g1")) != 1 {
		t.Fatal("Propagate must not mutate the source")
	}
}

func TestGenesPerTerm(t *testing.T) {
	o := diamond(t)
	a := NewAnnotations()
	a.Add("g1", "GO:4")
	a.Add("g2", "GO:2")
	inv := a.Propagate(o).GenesPerTerm()
	if len(inv["GO:1"]) != 2 {
		t.Fatalf("root genes = %v", inv["GO:1"])
	}
	if len(inv["GO:4"]) != 1 || !inv["GO:4"]["g1"] {
		t.Fatalf("leaf genes = %v", inv["GO:4"])
	}
	if len(inv["GO:2"]) != 2 { // g1 via propagation, g2 direct
		t.Fatalf("GO:2 genes = %v", inv["GO:2"])
	}
}

func TestSynthetic(t *testing.T) {
	leaves := []string{"heat shock", "glycolysis", "cell cycle", "DNA repair",
		"ribosome biogenesis", "autophagy", "mating", "sporulation"}
	o, leafOf, err := Synthetic(SyntheticSpec{LeafNames: leaves, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := o.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(leafOf) != len(leaves) {
		t.Fatalf("leafOf = %d entries", len(leafOf))
	}
	roots := o.Roots()
	if len(roots) != 1 {
		t.Fatalf("roots = %v", roots)
	}
	for name, id := range leafOf {
		term := o.Term(id)
		if term == nil || term.Name != name {
			t.Fatalf("leaf %q -> %v", name, term)
		}
		// Every leaf reaches the root.
		anc := o.Ancestors(id)
		foundRoot := false
		for _, a := range anc {
			if a == roots[0] {
				foundRoot = true
			}
		}
		if !foundRoot {
			t.Fatalf("leaf %q does not reach the root", name)
		}
	}
	if _, _, err := Synthetic(SyntheticSpec{}); err == nil {
		t.Fatal("no leaves should error")
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	leaves := []string{"a", "b", "c", "d"}
	o1, l1, _ := Synthetic(SyntheticSpec{LeafNames: leaves, Seed: 5})
	o2, l2, _ := Synthetic(SyntheticSpec{LeafNames: leaves, Seed: 5})
	if o1.Len() != o2.Len() {
		t.Fatal("same seed, different sizes")
	}
	for k, v := range l1 {
		if l2[k] != v {
			t.Fatal("same seed, different leaf mapping")
		}
	}
}

func TestAnnotateFromModules(t *testing.T) {
	genes := map[string][]string{
		"g1": {"heat shock"},
		"g2": {"glycolysis"},
		"g3": {"unknown module"},
	}
	leafOf := map[string]string{"heat shock": "GO:10", "glycolysis": "GO:11"}
	a := AnnotateFromModules(genes, leafOf)
	if !a.Has("g1", "GO:10") || !a.Has("g2", "GO:11") {
		t.Fatal("annotations missing")
	}
	if len(a.TermsOf("g3")) != 0 {
		t.Fatal("unknown module should not annotate")
	}
}
