// Package ontology implements the Gene Ontology substrate behind GOLEM
// (Section 3, Figure 5 of the paper): a directed acyclic graph of terms,
// the OBO flat-file format the GO Consortium distributes, gene-to-term
// annotations with ancestor propagation, and a synthetic GO generator used
// because the real ontology cannot ship with an offline reproduction.
package ontology

import (
	"errors"
	"fmt"
	"sort"
)

// Term is one node of the ontology graph.
type Term struct {
	// ID is the accession, e.g. "GO:0006950".
	ID string
	// Name is the human-readable label, e.g. "response to stress".
	Name string
	// Namespace is the GO aspect (biological_process, molecular_function,
	// cellular_component).
	Namespace string
	// Parents lists the IDs this term is_a / part_of children of.
	Parents []string
	// Obsolete terms are kept for parsing fidelity but excluded from
	// traversal and enrichment.
	Obsolete bool
}

// Ontology is a DAG of terms. Edges run child -> parent ("is_a").
type Ontology struct {
	terms    map[string]*Term
	children map[string][]string
	ordered  []string // insertion order for deterministic iteration
}

// New returns an empty ontology.
func New() *Ontology {
	return &Ontology{
		terms:    make(map[string]*Term),
		children: make(map[string][]string),
	}
}

// AddTerm inserts a term. Re-adding an existing ID replaces the term's
// fields and re-links its parent edges.
func (o *Ontology) AddTerm(t *Term) error {
	if t == nil || t.ID == "" {
		return errors.New("ontology: term must have an ID")
	}
	if old, ok := o.terms[t.ID]; ok {
		// Unlink previous child edges.
		for _, p := range old.Parents {
			kids := o.children[p]
			for i, k := range kids {
				if k == t.ID {
					o.children[p] = append(kids[:i], kids[i+1:]...)
					break
				}
			}
		}
	} else {
		o.ordered = append(o.ordered, t.ID)
	}
	cp := *t
	cp.Parents = append([]string(nil), t.Parents...)
	o.terms[t.ID] = &cp
	for _, p := range cp.Parents {
		o.children[p] = append(o.children[p], t.ID)
	}
	return nil
}

// Term returns the term with the given ID, or nil.
func (o *Ontology) Term(id string) *Term { return o.terms[id] }

// Len returns the number of terms (including obsolete ones).
func (o *Ontology) Len() int { return len(o.terms) }

// TermIDs returns all term IDs in insertion order.
func (o *Ontology) TermIDs() []string { return append([]string(nil), o.ordered...) }

// Children returns the direct children of a term (copy).
func (o *Ontology) Children(id string) []string {
	return append([]string(nil), o.children[id]...)
}

// Parents returns the direct parents of a term (copy), empty for unknown
// IDs.
func (o *Ontology) Parents(id string) []string {
	if t := o.terms[id]; t != nil {
		return append([]string(nil), t.Parents...)
	}
	return nil
}

// Roots returns the IDs of non-obsolete terms with no parents, sorted.
func (o *Ontology) Roots() []string {
	var out []string
	for _, id := range o.ordered {
		t := o.terms[id]
		if !t.Obsolete && len(t.Parents) == 0 {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// Ancestors returns the transitive parents of id (excluding id itself),
// deduplicated, sorted. Unknown IDs yield nil.
func (o *Ontology) Ancestors(id string) []string {
	if o.terms[id] == nil {
		return nil
	}
	seen := make(map[string]bool)
	stack := append([]string(nil), o.terms[id].Parents...)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[n] {
			continue
		}
		seen[n] = true
		if t := o.terms[n]; t != nil {
			stack = append(stack, t.Parents...)
		}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Descendants returns the transitive children of id (excluding id itself),
// deduplicated, sorted.
func (o *Ontology) Descendants(id string) []string {
	if o.terms[id] == nil {
		return nil
	}
	seen := make(map[string]bool)
	stack := append([]string(nil), o.children[id]...)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[n] {
			continue
		}
		seen[n] = true
		stack = append(stack, o.children[n]...)
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Depth returns the length of the longest path from a root to id (roots
// have depth 0), or -1 for unknown IDs. Longest-path depth is what layered
// DAG drawing uses.
func (o *Ontology) Depth(id string) int {
	if o.terms[id] == nil {
		return -1
	}
	memo := make(map[string]int)
	var depth func(string) int
	depth = func(n string) int {
		if d, ok := memo[n]; ok {
			return d
		}
		memo[n] = 0 // break accidental cycles defensively
		t := o.terms[n]
		best := 0
		for _, p := range t.Parents {
			if o.terms[p] == nil {
				continue
			}
			if d := depth(p) + 1; d > best {
				best = d
			}
		}
		memo[n] = best
		return best
	}
	return depth(id)
}

// Validate checks referential integrity and acyclicity.
func (o *Ontology) Validate() error {
	for id, t := range o.terms {
		for _, p := range t.Parents {
			if o.terms[p] == nil {
				return fmt.Errorf("ontology: term %s references unknown parent %s", id, p)
			}
		}
	}
	// Kahn's algorithm over child->parent edges detects cycles.
	indeg := make(map[string]int, len(o.terms)) // number of unprocessed parents
	for id, t := range o.terms {
		indeg[id] = len(t.Parents)
	}
	queue := make([]string, 0, len(o.terms))
	for id, d := range indeg {
		if d == 0 {
			queue = append(queue, id)
		}
	}
	processed := 0
	for len(queue) > 0 {
		n := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		processed++
		for _, c := range o.children[n] {
			indeg[c]--
			if indeg[c] == 0 {
				queue = append(queue, c)
			}
		}
	}
	if processed != len(o.terms) {
		return errors.New("ontology: graph contains a cycle")
	}
	return nil
}

// TopologicalOrder returns term IDs parents-before-children. It fails on
// cyclic graphs.
func (o *Ontology) TopologicalOrder() ([]string, error) {
	indeg := make(map[string]int, len(o.terms))
	for id, t := range o.terms {
		indeg[id] = len(t.Parents)
	}
	// Deterministic processing: seed queue in insertion order.
	var queue []string
	for _, id := range o.ordered {
		if indeg[id] == 0 {
			queue = append(queue, id)
		}
	}
	out := make([]string, 0, len(o.terms))
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		out = append(out, n)
		kids := append([]string(nil), o.children[n]...)
		sort.Strings(kids)
		for _, c := range kids {
			indeg[c]--
			if indeg[c] == 0 {
				queue = append(queue, c)
			}
		}
	}
	if len(out) != len(o.terms) {
		return nil, errors.New("ontology: graph contains a cycle")
	}
	return out, nil
}
