package ontology

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// randomDAG builds a random layered DAG with n terms; parents always have
// smaller indices so the graph is acyclic by construction.
func randomDAG(seed int64, n int) *Ontology {
	r := rand.New(rand.NewSource(seed))
	o := New()
	for i := 0; i < n; i++ {
		t := &Term{ID: fmt.Sprintf("T%03d", i), Name: fmt.Sprintf("term %d", i)}
		if i > 0 {
			nParents := 1 + r.Intn(2)
			seen := map[int]bool{}
			for p := 0; p < nParents; p++ {
				pi := r.Intn(i)
				if !seen[pi] {
					seen[pi] = true
					t.Parents = append(t.Parents, fmt.Sprintf("T%03d", pi))
				}
			}
		}
		if err := o.AddTerm(t); err != nil {
			panic(err)
		}
	}
	return o
}

// Property: ancestor/descendant duality — b ∈ Ancestors(a) ⇔ a ∈
// Descendants(b).
func TestQuickAncestorDescendantDuality(t *testing.T) {
	f := func(seed int64, nBits uint8) bool {
		n := int(nBits%20) + 3
		o := randomDAG(seed, n)
		if o.Validate() != nil {
			return false
		}
		r := rand.New(rand.NewSource(seed + 1))
		for trial := 0; trial < 5; trial++ {
			a := fmt.Sprintf("T%03d", r.Intn(n))
			for _, b := range o.Ancestors(a) {
				found := false
				for _, d := range o.Descendants(b) {
					if d == a {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: depth is consistent with the parent relation — every child is
// strictly deeper than each of its parents.
func TestQuickDepthMonotone(t *testing.T) {
	f := func(seed int64, nBits uint8) bool {
		n := int(nBits%20) + 3
		o := randomDAG(seed, n)
		for _, id := range o.TermIDs() {
			d := o.Depth(id)
			for _, p := range o.Parents(id) {
				if o.Depth(p) >= d {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: propagation is idempotent — propagating an already-propagated
// annotation set changes nothing.
func TestQuickPropagateIdempotent(t *testing.T) {
	f := func(seed int64, nBits, gBits uint8) bool {
		n := int(nBits%15) + 3
		o := randomDAG(seed, n)
		r := rand.New(rand.NewSource(seed + 2))
		a := NewAnnotations()
		nGenes := int(gBits%10) + 1
		for g := 0; g < nGenes; g++ {
			a.Add(fmt.Sprintf("g%d", g), fmt.Sprintf("T%03d", r.Intn(n)))
		}
		p1 := a.Propagate(o)
		p2 := p1.Propagate(o)
		if p1.Len() != p2.Len() {
			return false
		}
		for _, g := range p1.Genes() {
			t1, t2 := p1.TermsOf(g), p2.TermsOf(g)
			if len(t1) != len(t2) {
				return false
			}
			for i := range t1 {
				if t1[i] != t2[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: OBO round trip preserves the graph for random DAGs.
func TestQuickOBORoundTrip(t *testing.T) {
	f := func(seed int64, nBits uint8) bool {
		n := int(nBits%15) + 2
		o := randomDAG(seed, n)
		var buf bytes.Buffer
		if err := WriteOBO(&buf, o); err != nil {
			return false
		}
		back, err := ReadOBO(&buf)
		if err != nil {
			return false
		}
		if back.Len() != o.Len() {
			return false
		}
		for _, id := range o.TermIDs() {
			a, b := o.Term(id), back.Term(id)
			if b == nil || a.Name != b.Name || len(a.Parents) != len(b.Parents) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
