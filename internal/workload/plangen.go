package workload

import (
	"fmt"
	"math/rand"
	"net/url"
	"strings"
)

// planGen holds the session state NewPlan threads through op generation:
// the Zipf-ranked query pool, one tile walker per pane, and the current
// enrichment burst. All randomness flows through the single rng so the
// whole plan is a function of the seed.
type planGen struct {
	spec Spec
	rng  *rand.Rand

	pool []string   // pre-joined q= values, index 0 most popular
	zipf *rand.Zipf // ranks pool indexes

	walkers []tileWalker

	burstLeft int
	selection []string
}

// tileWalker pans and zooms a row window over one pane, the way a viewer
// follows an interactive user: mostly small steps to an adjacent window,
// occasionally halving or doubling the window, always in bounds.
type tileWalker struct {
	pane int // dataset reference
	rows int // pane row count
	from int // window start (inclusive)
	win  int // window size
	dir  int // +1 panning down, -1 panning up
}

func (g *planGen) init() {
	spec, rng := g.spec, g.rng

	if spec.Mix.Search > 0 {
		n := spec.QueryPool
		g.pool = make([]string, n)
		seen := make(map[string]bool, n)
		for i := 0; i < n; i++ {
			// Distinct gene sets so distinct pool slots are distinct cache
			// keys; resample on the (rare) collision.
			for {
				ids := make([]string, spec.QueryGenes)
				for j, p := range rng.Perm(len(spec.Genes))[:spec.QueryGenes] {
					ids[j] = spec.Genes[p]
				}
				q := strings.Join(ids, ",")
				if !seen[q] {
					seen[q] = true
					g.pool[i] = q
					break
				}
			}
		}
		g.zipf = rand.NewZipf(rng, spec.ZipfS, 1, uint64(n-1))
	}

	if spec.Mix.Heatmap > 0 {
		g.walkers = make([]tileWalker, len(spec.PaneRows))
		for i, rows := range spec.PaneRows {
			win := spec.TileRows
			if win > rows {
				win = rows
			}
			g.walkers[i] = tileWalker{
				pane: i,
				rows: rows,
				win:  win,
				from: rng.Intn(rows - win + 1),
				dir:  1 - 2*rng.Intn(2),
			}
		}
	}
}

// searchOp draws a query from the pool under the Zipf rank: hot queries
// repeat exactly (cache hits and coalescing under concurrency), the tail
// stays cold.
func (g *planGen) searchOp() Op {
	q := g.pool[g.zipf.Uint64()]
	return Op{
		Endpoint: "search",
		Path:     "/api/search?q=" + url.QueryEscape(q) + "&top=20",
	}
}

// heatmapOp advances one walker and requests its current window.
func (g *planGen) heatmapOp() Op {
	w := &g.walkers[g.rng.Intn(len(g.walkers))]
	switch g.rng.Intn(10) {
	case 0: // zoom in
		if w.win > 8 {
			w.win /= 2
		}
	case 1: // zoom out
		if w.win*2 <= w.rows {
			w.win *= 2
		}
	default: // pan by half a window, bouncing off the edges
		step := w.win / 2
		if step == 0 {
			step = 1
		}
		w.from += w.dir * step
	}
	if w.from+w.win > w.rows {
		w.from = w.rows - w.win
		w.dir = -1
	}
	if w.from < 0 {
		w.from = 0
		w.dir = 1
	}
	return Op{
		Endpoint: "heatmap",
		Path: fmt.Sprintf("/api/heatmap?dataset=%d&rows=%d:%d&w=%d&h=%d",
			w.pane, w.from, w.from+w.win, g.spec.TileSize, g.spec.TileSize),
	}
}

// enrichOp continues the current burst — the same selection re-analyzed,
// sometimes with one gene swapped, the way a user refines a list — or
// starts a fresh burst from a new contiguous slice of the universe.
func (g *planGen) enrichOp() Op {
	spec, rng := g.spec, g.rng
	if g.burstLeft <= 0 {
		n := spec.EnrichGenes
		if n > len(spec.Genes) {
			n = len(spec.Genes)
		}
		start := rng.Intn(len(spec.Genes))
		g.selection = make([]string, n)
		for i := 0; i < n; i++ {
			g.selection[i] = spec.Genes[(start+i)%len(spec.Genes)]
		}
		g.burstLeft = spec.EnrichBurst
	} else if rng.Intn(2) == 0 {
		// Refine: swap one gene, keeping the burst correlated but not
		// identical — misses that share most of their work.
		g.selection = append([]string(nil), g.selection...)
		g.selection[rng.Intn(len(g.selection))] = spec.Genes[rng.Intn(len(spec.Genes))]
	}
	g.burstLeft--
	return Op{
		Endpoint: "enrich",
		Path:     "/api/enrich?genes=" + url.QueryEscape(strings.Join(g.selection, ",")),
	}
}
