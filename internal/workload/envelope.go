package workload

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Envelope is the JSONL record of one request: what was scheduled, what
// was sent, what came back, and what the response disclosed about how it
// was produced (cache disposition, shard tally). One line per request is
// the whole measurement output of a run — analysis is a separate fold so
// raw envelopes can be re-analyzed, merged across runs, or diffed.
type Envelope struct {
	// Step tags the rate-sweep step this request belongs to (0 for a
	// single-rate run).
	Step int `json:"step"`
	// Rate is the offered open-loop rate of the step, requests/second.
	Rate float64 `json:"rate"`
	// Seq is the op's index in its plan.
	Seq int `json:"seq"`

	Endpoint string `json:"endpoint"`
	Path     string `json:"path"`

	// SchedMS is the scheduled arrival, ms from run start.
	SchedMS float64 `json:"sched_ms"`
	// IssueDelayMS is how late the generator itself issued the request
	// (scheduler lag, not server time). Large values mean the harness, not
	// the server, was the bottleneck — a stall.
	IssueDelayMS float64 `json:"issue_delay_ms"`
	// LatencyMS is completion minus *scheduled* arrival — the
	// coordinated-omission-free latency a real open-loop client would see.
	LatencyMS float64 `json:"latency_ms"`
	// ServiceMS is completion minus actual send — the server's share alone.
	ServiceMS float64 `json:"service_ms"`

	// Status is the HTTP status, or 0 when the request failed in
	// transport (see Error).
	Status int   `json:"status"`
	Bytes  int64 `json:"bytes"`
	// Cache is the X-Forestview-Cache disposition
	// (hit|miss|coalesced|prefetched), empty when the endpoint does not
	// disclose one. "prefetched" is a hit whose tile the server rendered
	// speculatively before this request asked for it.
	Cache string `json:"cache,omitempty"`
	// ShardsOK/ShardsTotal/Degraded mirror the X-Forestview-Shards-*
	// headers on scattered responses.
	ShardsOK    int    `json:"shards_ok,omitempty"`
	ShardsTotal int    `json:"shards_total,omitempty"`
	Degraded    bool   `json:"degraded,omitempty"`
	Error       string `json:"error,omitempty"`
}

// WriteEnvelopes writes envelopes as JSONL.
func WriteEnvelopes(w io.Writer, envs []Envelope) error {
	enc := json.NewEncoder(w)
	for i := range envs {
		if err := enc.Encode(&envs[i]); err != nil {
			return err
		}
	}
	return nil
}

// ReadEnvelopes reads JSONL envelopes until EOF.
func ReadEnvelopes(r io.Reader) ([]Envelope, error) {
	var envs []Envelope
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		var e Envelope
		if err := json.Unmarshal(b, &e); err != nil {
			return nil, fmt.Errorf("workload: envelope line %d: %w", line, err)
		}
		envs = append(envs, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return envs, nil
}
