package workload

import (
	"fmt"
	"net/url"
	"reflect"
	"testing"
	"time"
)

// parseWindow extracts dataset and row window from a heatmap op path.
func parseWindow(t *testing.T, path string) (ds, from, to int) {
	t.Helper()
	u, err := url.Parse(path)
	if err != nil {
		t.Fatal(err)
	}
	q := u.Query()
	if _, err := fmt.Sscanf(q.Get("dataset"), "%d", &ds); err != nil {
		t.Fatalf("bad dataset in %q", path)
	}
	if _, err := fmt.Sscanf(q.Get("rows"), "%d:%d", &from, &to); err != nil {
		t.Fatalf("bad rows in %q", path)
	}
	return ds, from, to
}

// TestPanwalkDeterministic: the panwalk plan is a pure function of its
// spec, like every other plan.
func TestPanwalkDeterministic(t *testing.T) {
	spec := Spec{Rate: 300, Duration: 2 * time.Second, Seed: 7, PaneRows: []int{600}}
	a, err := NewPanwalkPlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPanwalkPlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same spec produced different panwalk plans")
	}
	spec.Seed = 8
	c, err := NewPanwalkPlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Ops, c.Ops) {
		t.Fatal("different seeds produced identical panwalk plans")
	}
}

// TestPanwalkAdjacency: every op is a heatmap request, every window is in
// bounds, and consecutive windows of a pane are *correlated*: each is the
// previous window's pan neighbour (sharing an edge) or its zoom
// parent/child (sharing its center region) — exactly the candidate set the
// server's prefetcher renders ahead. Validating the geometry here is what
// makes the forestbench prefetch gate meaningful: a walk the prefetcher
// cannot predict would measure nothing.
func TestPanwalkAdjacency(t *testing.T) {
	spec := Spec{Rate: 500, Duration: 4 * time.Second, Seed: 11, PaneRows: []int{600}, TileRows: 64}
	plan, err := NewPanwalkPlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Ops) == 0 {
		t.Fatal("no ops")
	}
	pf, pt := -1, -1
	adjacent, zooms := 0, 0
	for i, op := range plan.Ops {
		if op.Endpoint != "heatmap" {
			t.Fatalf("op %d endpoint %q, want heatmap", i, op.Endpoint)
		}
		_, from, to := parseWindow(t, op.Path)
		if from < 0 || to <= from || to > 600 {
			t.Fatalf("op %d window %d:%d out of bounds", i, from, to)
		}
		if pf >= 0 {
			switch {
			case from == pt || to == pf:
				adjacent++ // pan: shares an edge with the previous window
			case from == pf && to == pt:
				// edge-pinned repeat (whole-pane window, or a bounce)
			default:
				// zoom: the new window contains or is contained by the old
				// one's center region.
				center := (pf + pt) / 2
				if from > center || to < center {
					t.Fatalf("op %d window %d:%d unrelated to predecessor %d:%d", i, from, to, pf, pt)
				}
				zooms++
			}
		}
		pf, pt = from, to
	}
	if adjacent < len(plan.Ops)/2 {
		t.Fatalf("only %d/%d steps were adjacent pans", adjacent, len(plan.Ops))
	}
	if zooms == 0 {
		t.Fatal("walk never zoomed")
	}
}

// TestDiurnalArrivalShape: with one diurnal period spanning the whole
// duration, the first half (rising sine) must schedule measurably more
// arrivals than the second (falling sine) — the thinning sampler actually
// shapes the trace.
func TestDiurnalArrivalShape(t *testing.T) {
	spec := Spec{
		Rate:     400,
		Duration: 4 * time.Second,
		Seed:     3,
		Diurnal:  []DiurnalPeriod{{Period: 4 * time.Second, Amplitude: 0.8}},
		PaneRows: []int{300},
		Genes:    testGenes(50),
	}
	plan, err := NewPlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	half := spec.Duration / 2
	firstHalf := 0
	for _, op := range plan.Ops {
		if op.At < half {
			firstHalf++
		}
	}
	secondHalf := len(plan.Ops) - firstHalf
	// Expected ratio is (1+2·0.8/π)/(1-2·0.8/π) ≈ 3.1; even 5σ of Poisson
	// noise cannot push it below 1.5.
	if float64(firstHalf) < 1.5*float64(secondHalf) {
		t.Fatalf("diurnal trace flat: %d arrivals in the peak half vs %d in the trough half", firstHalf, secondHalf)
	}
	// Total volume stays near the base rate×duration (the sine integrates
	// to zero over a full period).
	want := spec.Rate * spec.Duration.Seconds()
	if got := float64(len(plan.Ops)); got < 0.7*want || got > 1.3*want {
		t.Fatalf("diurnal op count %v, want ~%v", got, want)
	}

	// The panwalk generator honors the same trace.
	pw, err := NewPanwalkPlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	pwFirst := 0
	for _, op := range pw.Ops {
		if op.At < half {
			pwFirst++
		}
	}
	if float64(pwFirst) < 1.5*float64(len(pw.Ops)-pwFirst) {
		t.Fatalf("panwalk diurnal trace flat: %d vs %d", pwFirst, len(pw.Ops)-pwFirst)
	}
}

// TestPanwalkValidation mirrors NewPlan's input checking.
func TestPanwalkValidation(t *testing.T) {
	base := Spec{Rate: 100, Duration: time.Second, PaneRows: []int{100}}
	for name, mutate := range map[string]func(*Spec){
		"zero rate":     func(s *Spec) { s.Rate = 0 },
		"zero duration": func(s *Spec) { s.Duration = 0 },
		"no panes":      func(s *Spec) { s.PaneRows = nil },
		"empty pane":    func(s *Spec) { s.PaneRows = []int{100, 0} },
	} {
		t.Run(name, func(t *testing.T) {
			s := base
			mutate(&s)
			if _, err := NewPanwalkPlan(s); err == nil {
				t.Fatal("want error")
			}
		})
	}
}
