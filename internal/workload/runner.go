package workload

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// RunOptions configures one open-loop run of a plan.
type RunOptions struct {
	// BaseURL is the target daemon, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Client issues the requests (default: a client with a generous
	// timeout and unlimited idle connections to BaseURL's host).
	Client *http.Client
	// Out receives one JSON envelope per line. Required.
	Out io.Writer
	// Step and Rate tag every envelope (rate defaults to the plan's).
	Step int
	Rate float64
}

// Run replays plan against BaseURL open-loop: every op is issued at its
// scheduled offset regardless of how earlier requests are faring, each on
// its own goroutine, so a slow server bends latency — never the offered
// load. One envelope per op is written to opt.Out (ordered by completion,
// not by schedule). Run returns the number of envelopes written; a
// canceled context stops issuing new requests but still drains in-flight
// ones.
func Run(ctx context.Context, plan *Plan, opt RunOptions) (int, error) {
	client := opt.Client
	if client == nil {
		client = &http.Client{Timeout: 30 * time.Second}
	}
	rate := opt.Rate
	if rate == 0 {
		rate = plan.Spec.Rate
	}

	var (
		mu    sync.Mutex
		enc   = json.NewEncoder(opt.Out)
		wrErr error
		count int
		wg    sync.WaitGroup
	)
	emit := func(e *Envelope) {
		mu.Lock()
		defer mu.Unlock()
		if wrErr == nil {
			if wrErr = enc.Encode(e); wrErr == nil {
				count++
			}
		}
	}

	start := time.Now()
	timer := time.NewTimer(0)
	defer timer.Stop()
	if !timer.Stop() {
		<-timer.C
	}
issue:
	for seq := range plan.Ops {
		op := &plan.Ops[seq]
		if wait := op.At - time.Since(start); wait > 0 {
			timer.Reset(wait)
			select {
			case <-timer.C:
			case <-ctx.Done():
				if !timer.Stop() {
					<-timer.C
				}
				break issue
			}
		} else if ctx.Err() != nil {
			break issue
		}
		issuedAt := time.Since(start)
		wg.Add(1)
		go func(seq int, op *Op, issuedAt time.Duration) {
			defer wg.Done()
			e := measure(ctx, client, opt.BaseURL, op, start)
			e.Step = opt.Step
			e.Rate = rate
			e.Seq = seq
			e.IssueDelayMS = ms(issuedAt - op.At)
			emit(e)
		}(seq, op, issuedAt)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	return count, wrErr
}

// measure issues one request and fills the measurement fields of its
// envelope.
func measure(ctx context.Context, client *http.Client, base string, op *Op, start time.Time) *Envelope {
	e := &Envelope{
		Endpoint: op.Endpoint,
		Path:     op.Path,
		SchedMS:  ms(op.At),
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+op.Path, nil)
	if err != nil {
		e.Error = err.Error()
		e.LatencyMS = ms(time.Since(start) - op.At)
		return e
	}
	sent := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		e.Error = err.Error()
	} else {
		n, _ := io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		e.Status = resp.StatusCode
		e.Bytes = n
		e.Cache = resp.Header.Get("X-Forestview-Cache")
		e.ShardsOK = atoiHeader(resp.Header, "X-Forestview-Shards-Ok")
		e.ShardsTotal = atoiHeader(resp.Header, "X-Forestview-Shards-Total")
		e.Degraded = resp.Header.Get("X-Forestview-Degraded") == "true"
	}
	done := time.Now()
	e.ServiceMS = ms(done.Sub(sent))
	e.LatencyMS = ms(done.Sub(start) - op.At)
	return e
}

func atoiHeader(h http.Header, key string) int {
	n, _ := strconv.Atoi(h.Get(key))
	return n
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
