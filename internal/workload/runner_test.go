package workload

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestRunOpenLoop replays a short plan against a trivial server and checks
// the open-loop contract: one envelope per op, issue times tracking the
// schedule (not the server), and header fields relayed into envelopes.
func TestRunOpenLoop(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case strings.HasPrefix(r.URL.Path, "/api/search"):
			w.Header().Set("X-Forestview-Cache", "hit")
			w.Header().Set("X-Forestview-Shards-Ok", "1")
			w.Header().Set("X-Forestview-Shards-Total", "2")
			w.Header().Set("X-Forestview-Degraded", "true")
		case strings.HasPrefix(r.URL.Path, "/api/enrich"):
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		_, _ = w.Write([]byte("{}"))
	}))
	defer srv.Close()

	spec := Spec{
		Rate:     200,
		Duration: time.Second,
		Seed:     7,
		Mix:      Mix{Search: 2, Enrich: 1, Stats: 1},
		Genes:    testGenes(50),
	}
	plan, err := NewPlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := Run(context.Background(), plan, RunOptions{BaseURL: srv.URL, Out: &buf, Step: 3})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(plan.Ops) {
		t.Fatalf("wrote %d envelopes for %d ops", n, len(plan.Ops))
	}
	envs, err := ReadEnvelopes(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(envs) != len(plan.Ops) {
		t.Fatalf("read %d envelopes for %d ops", len(envs), len(plan.Ops))
	}
	seen := map[int]bool{}
	for _, e := range envs {
		if seen[e.Seq] {
			t.Fatalf("seq %d duplicated", e.Seq)
		}
		seen[e.Seq] = true
		op := plan.Ops[e.Seq]
		if e.Endpoint != op.Endpoint || e.Path != op.Path || e.Step != 3 || e.Rate != 200 {
			t.Fatalf("envelope %+v does not match op %+v", e, op)
		}
		if e.SchedMS != ms(op.At) {
			t.Fatalf("seq %d sched %v, want %v", e.Seq, e.SchedMS, ms(op.At))
		}
		// Open-loop: against an instant server the generator must track its
		// own schedule closely. 250ms of slack absorbs CI scheduling noise.
		if e.IssueDelayMS < 0 || e.IssueDelayMS > 250 {
			t.Fatalf("seq %d issue delay %vms", e.Seq, e.IssueDelayMS)
		}
		if e.LatencyMS < 0 || e.ServiceMS < 0 {
			t.Fatalf("seq %d negative timing: %+v", e.Seq, e)
		}
		switch e.Endpoint {
		case "search":
			if e.Status != 200 || e.Cache != "hit" || e.ShardsOK != 1 || e.ShardsTotal != 2 || !e.Degraded {
				t.Fatalf("search envelope missing relayed headers: %+v", e)
			}
		case "enrich":
			if e.Status != http.StatusServiceUnavailable {
				t.Fatalf("enrich status %d", e.Status)
			}
		case "stats":
			if e.Status != 200 || e.Cache != "" || e.Degraded {
				t.Fatalf("stats envelope: %+v", e)
			}
		}
	}
}

// TestRunTransportError: an unreachable target yields envelopes with
// status 0 and an error string, not a Run failure.
func TestRunTransportError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	srv.Close() // nothing listens anymore

	plan, err := NewPlan(Spec{Rate: 100, Duration: 100 * time.Millisecond, Seed: 1, Mix: Mix{Stats: 1}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := Run(context.Background(), plan, RunOptions{BaseURL: srv.URL, Out: &buf})
	if err != nil {
		t.Fatal(err)
	}
	envs, err := ReadEnvelopes(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || len(envs) != n {
		t.Fatalf("n=%d envelopes=%d", n, len(envs))
	}
	for _, e := range envs {
		if e.Status != 0 || e.Error == "" {
			t.Fatalf("expected transport error envelope, got %+v", e)
		}
	}
}

// TestRunCanceled: canceling the context stops issuing but the call still
// returns cleanly with the envelopes already earned.
func TestRunCanceled(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("{}"))
	}))
	defer srv.Close()

	plan, err := NewPlan(Spec{Rate: 50, Duration: 10 * time.Second, Seed: 1, Mix: Mix{Stats: 1}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	var buf bytes.Buffer
	n, err := Run(ctx, plan, RunOptions{BaseURL: srv.URL, Out: &buf})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 || n >= len(plan.Ops) {
		t.Fatalf("canceled run wrote %d of %d envelopes", n, len(plan.Ops))
	}
}
