// Package workload generates and drives open-loop request workloads
// against a forestviewd daemon, and folds the recorded per-request
// envelopes into latency/capacity reports.
//
// The generator is *open-loop*: arrival times come from a Poisson process
// at a configured rate, fixed before the first request is sent, so a slow
// server cannot slow the offered load down. Closed-loop drivers (a fixed
// worker pool of request-response loops) understate tail latency under
// saturation — every stalled worker silently withholds the requests it
// would have issued, the classic coordinated-omission trap. Here a
// request's latency is measured from its *scheduled* arrival, so queueing
// delay the server caused is charged to the server.
//
// Sessions are realistic mixes of the daemon's three workloads:
//
//   - SPELL searches drawn Zipf-style from a popular-query pool, so hot
//     queries repeat (exercising the cache/coalescing path) while a long
//     tail stays cold;
//   - heatmap tile walks that pan and zoom over adjacent row windows of a
//     pane, the access pattern of an interactive viewer;
//   - GOLEM enrich bursts: a selection is analyzed several times in close
//     succession with small mutations, the way a user refines a gene list.
//
// A Plan is fully materialized by NewPlan and deterministic under its
// seed: the same Spec always produces the same ops at the same offsets,
// so runs are reproducible and replayable across topologies.
package workload

import (
	"fmt"
	"math/rand"
	"time"
)

// Mix weights the session types; entries are relative (only ratios
// matter). A zero weight disables that op type entirely.
type Mix struct {
	Search  int `json:"search"`
	Heatmap int `json:"heatmap"`
	Enrich  int `json:"enrich"`
	Stats   int `json:"stats"`
}

// DefaultMix approximates an interactive exploration session: searching
// dominates, tile pulls follow the viewer around, enrichment punctuates.
func DefaultMix() Mix { return Mix{Search: 5, Heatmap: 3, Enrich: 2, Stats: 0} }

// Spec configures a Plan.
type Spec struct {
	// Rate is the open-loop arrival rate in requests/second.
	Rate float64
	// Duration bounds the arrival schedule.
	Duration time.Duration
	// Seed makes the plan deterministic.
	Seed int64
	// Mix weights the op types (zero value = DefaultMix).
	Mix Mix

	// Genes is the queryable gene universe (required when Mix.Search or
	// Mix.Enrich is positive).
	Genes []string
	// QueryGenes is the genes per search query (default 3, min 2 — the
	// daemon rejects single-gene searches).
	QueryGenes int
	// QueryPool is the number of distinct candidate queries the Zipf draw
	// ranks over (default 64).
	QueryPool int
	// ZipfS is the Zipf skew (> 1; default 1.2 — a few queries dominate,
	// the tail stays long).
	ZipfS float64

	// PaneRows lists the row count of each heatmap pane; index is the
	// dataset reference (required when Mix.Heatmap is positive).
	PaneRows []int
	// TileRows is the walker's initial row-window size (default 64).
	TileRows int
	// TileSize is the requested tile width and height in pixels
	// (default 128).
	TileSize int

	// EnrichBurst is the ops per enrichment burst (default 4).
	EnrichBurst int
	// EnrichGenes is the genes per enrichment selection (default 20).
	EnrichGenes int
}

// Op is one scheduled request.
type Op struct {
	// At is the scheduled arrival offset from run start.
	At time.Duration `json:"at"`
	// Endpoint labels the op for per-endpoint analysis ("search",
	// "heatmap", "enrich", "stats").
	Endpoint string `json:"endpoint"`
	// Path is the request path and query string.
	Path string `json:"path"`
}

// Plan is a fully materialized open-loop schedule.
type Plan struct {
	Spec Spec
	Ops  []Op
}

// withDefaults fills the zero-valued knobs.
func (s Spec) withDefaults() Spec {
	if s.Mix == (Mix{}) {
		s.Mix = DefaultMix()
	}
	if s.QueryGenes < 2 {
		s.QueryGenes = 3
	}
	if s.QueryPool <= 0 {
		s.QueryPool = 64
	}
	if s.ZipfS <= 1 {
		s.ZipfS = 1.2
	}
	if s.TileRows <= 0 {
		s.TileRows = 64
	}
	if s.TileSize <= 0 {
		s.TileSize = 128
	}
	if s.EnrichBurst <= 0 {
		s.EnrichBurst = 4
	}
	if s.EnrichGenes <= 0 {
		s.EnrichGenes = 20
	}
	return s
}

// NewPlan materializes the open-loop schedule for spec. The result is a
// pure function of the spec (including its seed).
func NewPlan(spec Spec) (*Plan, error) {
	spec = spec.withDefaults()
	if spec.Rate <= 0 {
		return nil, fmt.Errorf("workload: rate must be positive, got %g", spec.Rate)
	}
	if spec.Duration <= 0 {
		return nil, fmt.Errorf("workload: duration must be positive, got %v", spec.Duration)
	}
	m := spec.Mix
	if m.Search < 0 || m.Heatmap < 0 || m.Enrich < 0 || m.Stats < 0 {
		return nil, fmt.Errorf("workload: negative mix weight %+v", m)
	}
	total := m.Search + m.Heatmap + m.Enrich + m.Stats
	if total == 0 {
		return nil, fmt.Errorf("workload: empty mix")
	}
	if m.Search > 0 && len(spec.Genes) < spec.QueryGenes {
		return nil, fmt.Errorf("workload: search mix needs >= %d genes, have %d", spec.QueryGenes, len(spec.Genes))
	}
	if m.Enrich > 0 && len(spec.Genes) == 0 {
		return nil, fmt.Errorf("workload: enrich mix needs a gene universe")
	}
	if m.Heatmap > 0 {
		if len(spec.PaneRows) == 0 {
			return nil, fmt.Errorf("workload: heatmap mix needs pane row counts")
		}
		for i, n := range spec.PaneRows {
			if n <= 0 {
				return nil, fmt.Errorf("workload: pane %d has %d rows", i, n)
			}
		}
	}

	rng := rand.New(rand.NewSource(spec.Seed))
	g := &planGen{spec: spec, rng: rng}
	g.init()

	plan := &Plan{Spec: spec}
	for t := time.Duration(float64(time.Second) * rng.ExpFloat64() / spec.Rate); t < spec.Duration; t += time.Duration(float64(time.Second) * rng.ExpFloat64() / spec.Rate) {
		r := rng.Intn(total)
		var op Op
		switch {
		case r < m.Search:
			op = g.searchOp()
		case r < m.Search+m.Heatmap:
			op = g.heatmapOp()
		case r < m.Search+m.Heatmap+m.Enrich:
			op = g.enrichOp()
		default:
			op = Op{Endpoint: "stats", Path: "/api/stats"}
		}
		op.At = t
		plan.Ops = append(plan.Ops, op)
	}
	return plan, nil
}
