// Package workload generates and drives open-loop request workloads
// against a forestviewd daemon, and folds the recorded per-request
// envelopes into latency/capacity reports.
//
// The generator is *open-loop*: arrival times come from a Poisson process
// at a configured rate, fixed before the first request is sent, so a slow
// server cannot slow the offered load down. Closed-loop drivers (a fixed
// worker pool of request-response loops) understate tail latency under
// saturation — every stalled worker silently withholds the requests it
// would have issued, the classic coordinated-omission trap. Here a
// request's latency is measured from its *scheduled* arrival, so queueing
// delay the server caused is charged to the server.
//
// Sessions are realistic mixes of the daemon's three workloads:
//
//   - SPELL searches drawn Zipf-style from a popular-query pool, so hot
//     queries repeat (exercising the cache/coalescing path) while a long
//     tail stays cold;
//   - heatmap tile walks that pan and zoom over adjacent row windows of a
//     pane, the access pattern of an interactive viewer;
//   - GOLEM enrich bursts: a selection is analyzed several times in close
//     succession with small mutations, the way a user refines a gene list.
//
// A Plan is fully materialized by NewPlan and deterministic under its
// seed: the same Spec always produces the same ops at the same offsets,
// so runs are reproducible and replayable across topologies.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Mix weights the session types; entries are relative (only ratios
// matter). A zero weight disables that op type entirely.
type Mix struct {
	Search  int `json:"search"`
	Heatmap int `json:"heatmap"`
	Enrich  int `json:"enrich"`
	Stats   int `json:"stats"`
}

// DefaultMix approximates an interactive exploration session: searching
// dominates, tile pulls follow the viewer around, enrichment punctuates.
func DefaultMix() Mix { return Mix{Search: 5, Heatmap: 3, Enrich: 2, Stats: 0} }

// DiurnalPeriod is one sinusoidal component of a time-varying arrival
// rate: the instantaneous rate swings by ±Amplitude·Rate over each Period.
// Stacking several periods (a long "daily" swell plus a short "burst"
// ripple) reproduces the multi-period load traces production services see.
type DiurnalPeriod struct {
	Period    time.Duration
	Amplitude float64 // fraction of the base rate, e.g. 0.5 = ±50%
}

// Spec configures a Plan.
type Spec struct {
	// Rate is the open-loop arrival rate in requests/second.
	Rate float64
	// Diurnal, when non-empty, modulates Rate sinusoidally: the
	// instantaneous rate at offset t is
	// Rate·max(0.05, 1 + Σᵢ Amplitudeᵢ·sin(2πt/Periodᵢ)), sampled by
	// thinning a homogeneous process at the peak rate — still open-loop,
	// still a pure function of the seed.
	Diurnal []DiurnalPeriod
	// Duration bounds the arrival schedule.
	Duration time.Duration
	// Seed makes the plan deterministic.
	Seed int64
	// Mix weights the op types (zero value = DefaultMix).
	Mix Mix

	// Genes is the queryable gene universe (required when Mix.Search or
	// Mix.Enrich is positive).
	Genes []string
	// QueryGenes is the genes per search query (default 3, min 2 — the
	// daemon rejects single-gene searches).
	QueryGenes int
	// QueryPool is the number of distinct candidate queries the Zipf draw
	// ranks over (default 64).
	QueryPool int
	// ZipfS is the Zipf skew (> 1; default 1.2 — a few queries dominate,
	// the tail stays long).
	ZipfS float64

	// PaneRows lists the row count of each heatmap pane; index is the
	// dataset reference (required when Mix.Heatmap is positive).
	PaneRows []int
	// TileRows is the walker's initial row-window size (default 64).
	TileRows int
	// TileSize is the requested tile width and height in pixels
	// (default 128).
	TileSize int

	// EnrichBurst is the ops per enrichment burst (default 4).
	EnrichBurst int
	// EnrichGenes is the genes per enrichment selection (default 20).
	EnrichGenes int

	// ZoomEvery is the pan steps between zoom transitions in a panwalk
	// plan (default 8); NewPlan ignores it.
	ZoomEvery int
}

// Op is one scheduled request.
type Op struct {
	// At is the scheduled arrival offset from run start.
	At time.Duration `json:"at"`
	// Endpoint labels the op for per-endpoint analysis ("search",
	// "heatmap", "enrich", "stats").
	Endpoint string `json:"endpoint"`
	// Path is the request path and query string.
	Path string `json:"path"`
}

// Plan is a fully materialized open-loop schedule.
type Plan struct {
	Spec Spec
	Ops  []Op
}

// withDefaults fills the zero-valued knobs.
func (s Spec) withDefaults() Spec {
	if s.Mix == (Mix{}) {
		s.Mix = DefaultMix()
	}
	if s.QueryGenes < 2 {
		s.QueryGenes = 3
	}
	if s.QueryPool <= 0 {
		s.QueryPool = 64
	}
	if s.ZipfS <= 1 {
		s.ZipfS = 1.2
	}
	if s.TileRows <= 0 {
		s.TileRows = 64
	}
	if s.TileSize <= 0 {
		s.TileSize = 128
	}
	if s.EnrichBurst <= 0 {
		s.EnrichBurst = 4
	}
	if s.EnrichGenes <= 0 {
		s.EnrichGenes = 20
	}
	if s.ZoomEvery <= 0 {
		s.ZoomEvery = 8
	}
	return s
}

// NewPlan materializes the open-loop schedule for spec. The result is a
// pure function of the spec (including its seed).
func NewPlan(spec Spec) (*Plan, error) {
	spec = spec.withDefaults()
	if spec.Rate <= 0 {
		return nil, fmt.Errorf("workload: rate must be positive, got %g", spec.Rate)
	}
	if spec.Duration <= 0 {
		return nil, fmt.Errorf("workload: duration must be positive, got %v", spec.Duration)
	}
	m := spec.Mix
	if m.Search < 0 || m.Heatmap < 0 || m.Enrich < 0 || m.Stats < 0 {
		return nil, fmt.Errorf("workload: negative mix weight %+v", m)
	}
	total := m.Search + m.Heatmap + m.Enrich + m.Stats
	if total == 0 {
		return nil, fmt.Errorf("workload: empty mix")
	}
	if m.Search > 0 && len(spec.Genes) < spec.QueryGenes {
		return nil, fmt.Errorf("workload: search mix needs >= %d genes, have %d", spec.QueryGenes, len(spec.Genes))
	}
	if m.Enrich > 0 && len(spec.Genes) == 0 {
		return nil, fmt.Errorf("workload: enrich mix needs a gene universe")
	}
	if m.Heatmap > 0 {
		if len(spec.PaneRows) == 0 {
			return nil, fmt.Errorf("workload: heatmap mix needs pane row counts")
		}
		for i, n := range spec.PaneRows {
			if n <= 0 {
				return nil, fmt.Errorf("workload: pane %d has %d rows", i, n)
			}
		}
	}

	rng := rand.New(rand.NewSource(spec.Seed))
	g := &planGen{spec: spec, rng: rng}
	g.init()

	plan := &Plan{Spec: spec}
	for _, t := range spec.arrivals(rng) {
		r := rng.Intn(total)
		var op Op
		switch {
		case r < m.Search:
			op = g.searchOp()
		case r < m.Search+m.Heatmap:
			op = g.heatmapOp()
		case r < m.Search+m.Heatmap+m.Enrich:
			op = g.enrichOp()
		default:
			op = Op{Endpoint: "stats", Path: "/api/stats"}
		}
		op.At = t
		plan.Ops = append(plan.Ops, op)
	}
	return plan, nil
}

// rateAt is the instantaneous arrival rate at offset t: the base rate
// modulated by every diurnal period, floored at 5% so the process never
// fully dies mid-trace.
func (s Spec) rateAt(t time.Duration) float64 {
	mod := 1.0
	for _, d := range s.Diurnal {
		mod += d.Amplitude * math.Sin(2*math.Pi*t.Seconds()/d.Period.Seconds())
	}
	return s.Rate * math.Max(0.05, mod)
}

// arrivals draws the arrival schedule. Without diurnal periods this is a
// homogeneous Poisson process at Rate. With them, it thins a homogeneous
// process at the peak rate rmax = Rate·(1+Σ|amplitude|): each candidate
// arrival at offset t survives with probability rate(t)/rmax, the standard
// exact sampler for a non-homogeneous Poisson process.
func (s Spec) arrivals(rng *rand.Rand) []time.Duration {
	rmax := s.Rate
	for _, d := range s.Diurnal {
		if d.Period <= 0 {
			continue
		}
		rmax += s.Rate * math.Abs(d.Amplitude)
	}
	var out []time.Duration
	for t := time.Duration(float64(time.Second) * rng.ExpFloat64() / rmax); t < s.Duration; t += time.Duration(float64(time.Second) * rng.ExpFloat64() / rmax) {
		if len(s.Diurnal) > 0 && rng.Float64()*rmax > s.rateAt(t) {
			continue
		}
		out = append(out, t)
	}
	return out
}

// NewPanwalkPlan materializes a heatmap-only schedule that mimics an
// interactive viewer panning through a clustered pane: every op moves one
// full window from the previous one (down until the pane edge, then back
// up), with a zoom transition every ZoomEvery pans — doubling the window
// around its center (zoom out) or narrowing to its center half (zoom in).
// These are exactly the neighbourhoods the daemon's speculative prefetcher
// predicts, so against a prefetching server the steady-state walk should
// land almost entirely on prefetched or cached tiles; against a
// non-prefetching server every fresh window is a miss. Arrivals honor
// Diurnal like NewPlan. The result is a pure function of the spec.
func NewPanwalkPlan(spec Spec) (*Plan, error) {
	spec = spec.withDefaults()
	spec.Mix = Mix{Heatmap: 1}
	if spec.Rate <= 0 {
		return nil, fmt.Errorf("workload: rate must be positive, got %g", spec.Rate)
	}
	if spec.Duration <= 0 {
		return nil, fmt.Errorf("workload: duration must be positive, got %v", spec.Duration)
	}
	if len(spec.PaneRows) == 0 {
		return nil, fmt.Errorf("workload: panwalk needs pane row counts")
	}
	for i, n := range spec.PaneRows {
		if n <= 0 {
			return nil, fmt.Errorf("workload: pane %d has %d rows", i, n)
		}
	}

	rng := rand.New(rand.NewSource(spec.Seed))
	walkers := make([]panWalker, len(spec.PaneRows))
	for i, rows := range spec.PaneRows {
		win := spec.TileRows
		if win > rows {
			win = rows
		}
		walkers[i] = panWalker{pane: i, rows: rows, to: win, dir: 1}
	}

	plan := &Plan{Spec: spec}
	for _, t := range spec.arrivals(rng) {
		w := &walkers[rng.Intn(len(walkers))]
		plan.Ops = append(plan.Ops, Op{
			At:       t,
			Endpoint: "heatmap",
			Path: fmt.Sprintf("/api/heatmap?dataset=%d&rows=%d:%d&w=%d&h=%d",
				w.pane, w.from, w.to, spec.TileSize, spec.TileSize),
		})
		w.step(spec.ZoomEvery, rng)
	}
	return plan, nil
}

// panWalker holds one pane's walk state. Unlike the mixed plan's
// tileWalker (half-window hops), it moves in whole windows and zooms with
// the prefetcher's own parent/child geometry, so predicted and requested
// tiles share cache keys.
type panWalker struct {
	pane, rows int
	from, to   int // current window [from, to)
	dir        int // +1 panning down, -1 panning up
	pans       int // pans since the last zoom
}

// step advances to the next window.
func (w *panWalker) step(zoomEvery int, rng *rand.Rand) {
	span := w.to - w.from
	if span >= w.rows {
		return // the window already covers the whole pane; nowhere to go
	}
	if w.pans++; w.pans >= zoomEvery {
		w.pans = 0
		if rng.Intn(2) == 0 && 2*span < w.rows {
			// Zoom out to the parent window: double span, same center.
			center := (w.from + w.to) / 2
			w.from = max(0, center-span)
			w.to = min(w.rows, w.from+2*span)
			return
		}
		if span >= 16 {
			// Zoom in to the child window: the center half.
			w.from += span / 4
			w.to = min(w.rows, w.from+span/2)
			return
		}
		// Too small to zoom in, too large to zoom out: fall through to a pan.
	}
	if w.dir > 0 {
		if w.to >= w.rows {
			w.dir = -1
		} else {
			w.from, w.to = w.to, min(w.to+span, w.rows)
			return
		}
	}
	if w.from <= 0 {
		w.dir = 1
		w.from, w.to = w.to, min(w.to+span, w.rows)
		return
	}
	w.from, w.to = max(0, w.from-span), w.from
}
