package workload

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// synthStep fabricates n envelopes for one sweep step: evenly spaced
// arrivals at the offered rate, constant latency, optional failures.
func synthStep(step int, rate float64, n int, latencyMS float64, fail5xx int) []Envelope {
	envs := make([]Envelope, n)
	interval := 1000 / rate
	for i := range envs {
		envs[i] = Envelope{
			Step:      step,
			Rate:      rate,
			Seq:       i,
			Endpoint:  "search",
			Path:      "/api/search?q=x,y",
			SchedMS:   float64(i) * interval,
			LatencyMS: latencyMS,
			ServiceMS: latencyMS,
			Status:    200,
			Cache:     "hit",
		}
		if i < fail5xx {
			envs[i].Status = 503
		}
	}
	return envs
}

// TestAnalyzeQuantiles: nearest-rank percentiles over a known sample.
func TestAnalyzeQuantiles(t *testing.T) {
	envs := make([]Envelope, 100)
	for i := range envs {
		envs[i] = Envelope{Endpoint: "search", Status: 200, LatencyMS: float64(i + 1), SchedMS: float64(i)}
	}
	rep := Analyze(envs, AnalyzeOptions{})
	if rep.Latency.P50 != 50 || rep.Latency.P95 != 95 || rep.Latency.P99 != 99 || rep.Latency.Max != 100 {
		t.Fatalf("quantiles %+v", rep.Latency)
	}
	ep := rep.Endpoints["search"]
	if ep == nil || ep.Requests != 100 || ep.Latency.P99 != 99 {
		t.Fatalf("endpoint report %+v", ep)
	}
}

// TestAnalyzeCapacity: the capacity estimate is the highest offered rate
// whose step stayed clean — errors, a blown p99 SLO, or an achieved rate
// far under offered all disqualify a step.
func TestAnalyzeCapacity(t *testing.T) {
	var envs []Envelope
	envs = append(envs, synthStep(0, 100, 200, 10, 0)...) // clean
	envs = append(envs, synthStep(1, 200, 400, 20, 0)...) // clean, higher rate
	envs = append(envs, synthStep(2, 400, 800, 10, 5)...) // 5xx → not sustained
	rep := Analyze(envs, AnalyzeOptions{})
	if len(rep.Steps) != 3 {
		t.Fatalf("%d steps", len(rep.Steps))
	}
	if !rep.Steps[0].Sustained || !rep.Steps[1].Sustained || rep.Steps[2].Sustained {
		t.Fatalf("sustained flags: %v %v %v",
			rep.Steps[0].Sustained, rep.Steps[1].Sustained, rep.Steps[2].Sustained)
	}
	if rep.CapacityQPS != 200 {
		t.Fatalf("capacity %v, want 200", rep.CapacityQPS)
	}
	if rep.Errors5xx != 5 {
		t.Fatalf("5xx %d", rep.Errors5xx)
	}

	// A blown p99 SLO disqualifies even an error-free step.
	envs = append(envs[:0:0], synthStep(0, 100, 200, 5000, 0)...)
	rep = Analyze(envs, AnalyzeOptions{P99SLOMS: 1000})
	if rep.Steps[0].Sustained || rep.CapacityQPS != 0 {
		t.Fatalf("slow step sustained: %+v", rep.Steps[0])
	}

	// A step that only completed half its offered arrivals in its span is
	// not sustaining the rate, whatever its latencies say.
	half := synthStep(0, 100, 100, 10, 0)
	for i := range half {
		half[i].SchedMS *= 2 // stretch the span: achieved ≈ offered/2
	}
	rep = Analyze(half, AnalyzeOptions{})
	if rep.Steps[0].Sustained {
		t.Fatalf("under-achieving step sustained: %+v", rep.Steps[0])
	}
}

// TestAnalyzeCounters: stalls, degraded, transport errors, 4xx and cache
// dispositions are tallied where they belong.
func TestAnalyzeCounters(t *testing.T) {
	envs := []Envelope{
		{Endpoint: "search", Status: 200, Cache: "miss", IssueDelayMS: 50},
		{Endpoint: "search", Status: 200, Cache: "coalesced", Degraded: true},
		{Endpoint: "search", Status: 0, Error: "connection refused"},
		{Endpoint: "enrich", Status: 422},
		{Endpoint: "heatmap", Status: 200, Cache: "hit"},
	}
	rep := Analyze(envs, AnalyzeOptions{StallMS: 5})
	if rep.Stalls != 1 || rep.Degraded != 1 || rep.Transport != 1 || rep.Errors4xx != 1 || rep.Errors5xx != 0 {
		t.Fatalf("report %+v", rep)
	}
	if rep.DegradedRate != 0.2 {
		t.Fatalf("degraded rate %v", rep.DegradedRate)
	}
	s := rep.Endpoints["search"]
	if s.Misses != 1 || s.Coalesced != 1 || s.Hits != 0 || s.Transport != 1 || s.Degraded != 1 {
		t.Fatalf("search endpoint %+v", s)
	}
	if h := rep.Endpoints["heatmap"]; h.Hits != 1 {
		t.Fatalf("heatmap endpoint %+v", h)
	}
}

// TestReportWriteText smoke-checks the terminal rendering.
func TestReportWriteText(t *testing.T) {
	envs := append(synthStep(0, 100, 50, 10, 0), synthStep(1, 200, 50, 10, 1)...)
	var buf bytes.Buffer
	Analyze(envs, AnalyzeOptions{}).WriteText(&buf)
	out := buf.String()
	for _, want := range []string{"requests:", "search", "max sustainable rate: 100.0 req/s"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report output missing %q:\n%s", want, out)
		}
	}
}

// TestReportWriteCSV: one row per sweep step under a fixed header, with
// the counters and quantiles in their promised columns.
func TestReportWriteCSV(t *testing.T) {
	envs := append(synthStep(0, 100, 50, 10, 0), synthStep(1, 200, 50, 10, 2)...)
	var buf bytes.Buffer
	if err := Analyze(envs, AnalyzeOptions{}).WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines, want header + 2 steps:\n%s", len(lines), buf.String())
	}
	if lines[0] != "step,offered_qps,achieved_qps,requests,errors_5xx,transport_errors,degraded,stalls,p50_ms,p95_ms,p99_ms,max_ms,sustained" {
		t.Fatalf("header %q", lines[0])
	}
	for i, line := range lines[1:] {
		cols := strings.Split(line, ",")
		if len(cols) != 13 {
			t.Fatalf("row %d has %d columns: %q", i, len(cols), line)
		}
		if cols[0] != fmt.Sprint(i) {
			t.Fatalf("row %d step column %q", i, cols[0])
		}
	}
	if !strings.HasPrefix(lines[1], "0,100.000,") || !strings.HasSuffix(lines[1], ",true") {
		t.Fatalf("clean step row: %q", lines[1])
	}
	if !strings.HasPrefix(lines[2], "1,200.000,") || !strings.HasSuffix(lines[2], ",false") {
		t.Fatalf("failing step row: %q", lines[2])
	}
	if cols := strings.Split(lines[2], ","); cols[4] != "2" {
		t.Fatalf("5xx column %q in %q", cols[4], lines[2])
	}
}

// TestEnvelopeRoundTrip: JSONL write/read is lossless.
func TestEnvelopeRoundTrip(t *testing.T) {
	in := synthStep(2, 50, 5, 1.5, 1)
	in[0].Degraded = true
	in[0].ShardsOK = 1
	in[0].ShardsTotal = 2
	var buf bytes.Buffer
	if err := WriteEnvelopes(&buf, in); err != nil {
		t.Fatal(err)
	}
	out, err := ReadEnvelopes(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("%d envelopes, want %d", len(out), len(in))
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("envelope %d: %+v != %+v", i, in[i], out[i])
		}
	}
}
