package workload

import (
	"fmt"
	"io"
	"math"
	"sort"
)

// AnalyzeOptions tunes the fold from envelopes to a Report.
type AnalyzeOptions struct {
	// StallMS is the issue-delay threshold above which a request counts as
	// a generator stall (default 5ms). Stalls mean the harness fell behind
	// its own schedule — the run under-offered and its latencies flatter
	// the server.
	StallMS float64
	// P99SLOMS is the p99 latency bound a step must meet to count as
	// sustained (default 1000ms).
	P99SLOMS float64
	// MinAchievedFrac is the fraction of the offered rate a step must
	// actually complete to count as sustained (default 0.9) — a step that
	// only finished half its arrivals within its window did not sustain
	// the rate, whatever its percentiles say.
	MinAchievedFrac float64
}

func (o AnalyzeOptions) withDefaults() AnalyzeOptions {
	if o.StallMS <= 0 {
		o.StallMS = 5
	}
	if o.P99SLOMS <= 0 {
		o.P99SLOMS = 1000
	}
	if o.MinAchievedFrac <= 0 {
		o.MinAchievedFrac = 0.9
	}
	return o
}

// Quantiles summarizes a latency sample in milliseconds.
type Quantiles struct {
	P50 float64 `json:"p50_ms"`
	P95 float64 `json:"p95_ms"`
	P99 float64 `json:"p99_ms"`
	Max float64 `json:"max_ms"`
}

// quantilesOf computes nearest-rank percentiles; sample is sorted in
// place. Zero value for an empty sample.
func quantilesOf(sample []float64) Quantiles {
	if len(sample) == 0 {
		return Quantiles{}
	}
	sort.Float64s(sample)
	rank := func(p float64) float64 {
		i := int(math.Ceil(p*float64(len(sample)))) - 1
		if i < 0 {
			i = 0
		}
		return sample[i]
	}
	return Quantiles{
		P50: rank(0.50),
		P95: rank(0.95),
		P99: rank(0.99),
		Max: sample[len(sample)-1],
	}
}

// EndpointReport aggregates one endpoint's envelopes.
type EndpointReport struct {
	Requests  int `json:"requests"`
	Errors5xx int `json:"errors_5xx"`
	Errors4xx int `json:"errors_4xx"`
	Transport int `json:"transport_errors"`
	Degraded  int `json:"degraded"`
	Hits      int `json:"cache_hits"`
	Misses    int `json:"cache_misses"`
	Coalesced int `json:"cache_coalesced"`
	// Prefetched counts hits the server disclosed as speculative renders:
	// tiles ready before this walk asked for them.
	Prefetched int `json:"cache_prefetched"`
	// WarmRate is (hits+prefetched+coalesced)/all-disclosed — the fraction
	// of requests that never paid a cold render.
	WarmRate float64 `json:"warm_rate"`
	// Latency is scheduled-arrival-relative (coordinated-omission-free);
	// Service is send-relative (the server's share alone).
	Latency Quantiles `json:"latency"`
	Service Quantiles `json:"service"`
}

// StepReport aggregates one rate-sweep step.
type StepReport struct {
	Step       int     `json:"step"`
	OfferedQPS float64 `json:"offered_qps"`
	// AchievedQPS is completions over the step's active span (first
	// scheduled arrival to last completion).
	AchievedQPS float64   `json:"achieved_qps"`
	Requests    int       `json:"requests"`
	Errors5xx   int       `json:"errors_5xx"`
	Transport   int       `json:"transport_errors"`
	Degraded    int       `json:"degraded"`
	Stalls      int       `json:"stalls"`
	Latency     Quantiles `json:"latency"`
	// Sustained: no 5xx or transport errors, p99 within SLO, achieved
	// rate within MinAchievedFrac of offered.
	Sustained bool `json:"sustained"`
}

// Report is the fold of a run's envelopes.
type Report struct {
	Requests     int                        `json:"requests"`
	Errors5xx    int                        `json:"errors_5xx"`
	Errors4xx    int                        `json:"errors_4xx"`
	Transport    int                        `json:"transport_errors"`
	Degraded     int                        `json:"degraded"`
	DegradedRate float64                    `json:"degraded_rate"`
	Stalls       int                        `json:"stalls"`
	Latency      Quantiles                  `json:"latency"`
	Endpoints    map[string]*EndpointReport `json:"endpoints"`
	Steps        []*StepReport              `json:"steps,omitempty"`
	// CapacityQPS is the highest offered rate among sustained steps (0 if
	// no step sustained, or no sweep was run).
	CapacityQPS float64 `json:"capacity_qps"`
}

// Analyze folds envelopes into a Report.
func Analyze(envs []Envelope, opt AnalyzeOptions) *Report {
	opt = opt.withDefaults()
	rep := &Report{Endpoints: map[string]*EndpointReport{}}

	type stepAcc struct {
		rep        *StepReport
		latencies  []float64
		firstSched float64
		lastDone   float64
	}
	steps := map[int]*stepAcc{}
	var all []float64
	epLat := map[string][]float64{}
	epSvc := map[string][]float64{}

	for i := range envs {
		e := &envs[i]
		rep.Requests++
		ep := rep.Endpoints[e.Endpoint]
		if ep == nil {
			ep = &EndpointReport{}
			rep.Endpoints[e.Endpoint] = ep
		}
		ep.Requests++

		st := steps[e.Step]
		if st == nil {
			st = &stepAcc{
				rep:        &StepReport{Step: e.Step, OfferedQPS: e.Rate},
				firstSched: e.SchedMS,
			}
			steps[e.Step] = st
		}
		st.rep.Requests++
		if e.SchedMS < st.firstSched {
			st.firstSched = e.SchedMS
		}
		if done := e.SchedMS + e.LatencyMS; done > st.lastDone {
			st.lastDone = done
		}

		switch {
		case e.Status == 0:
			rep.Transport++
			ep.Transport++
			st.rep.Transport++
		case e.Status >= 500:
			rep.Errors5xx++
			ep.Errors5xx++
			st.rep.Errors5xx++
		case e.Status >= 400:
			rep.Errors4xx++
			ep.Errors4xx++
		}
		if e.Degraded {
			rep.Degraded++
			ep.Degraded++
			st.rep.Degraded++
		}
		switch e.Cache {
		case "hit":
			ep.Hits++
		case "miss":
			ep.Misses++
		case "coalesced":
			ep.Coalesced++
		case "prefetched":
			ep.Prefetched++
		}
		if e.IssueDelayMS > opt.StallMS {
			rep.Stalls++
			st.rep.Stalls++
		}
		all = append(all, e.LatencyMS)
		epLat[e.Endpoint] = append(epLat[e.Endpoint], e.LatencyMS)
		epSvc[e.Endpoint] = append(epSvc[e.Endpoint], e.ServiceMS)
		st.latencies = append(st.latencies, e.LatencyMS)
	}

	if rep.Requests > 0 {
		rep.DegradedRate = float64(rep.Degraded) / float64(rep.Requests)
	}
	rep.Latency = quantilesOf(all)
	for name, ep := range rep.Endpoints {
		ep.Latency = quantilesOf(epLat[name])
		ep.Service = quantilesOf(epSvc[name])
		if disclosed := ep.Hits + ep.Misses + ep.Coalesced + ep.Prefetched; disclosed > 0 {
			ep.WarmRate = float64(ep.Hits+ep.Prefetched+ep.Coalesced) / float64(disclosed)
		}
	}

	ids := make([]int, 0, len(steps))
	for id := range steps {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		st := steps[id]
		sr := st.rep
		sr.Latency = quantilesOf(st.latencies)
		if span := (st.lastDone - st.firstSched) / 1000; span > 0 {
			sr.AchievedQPS = float64(sr.Requests) / span
		}
		sr.Sustained = sr.Errors5xx == 0 && sr.Transport == 0 &&
			sr.Latency.P99 <= opt.P99SLOMS &&
			(sr.OfferedQPS == 0 || sr.AchievedQPS >= opt.MinAchievedFrac*sr.OfferedQPS)
		if sr.Sustained && sr.OfferedQPS > rep.CapacityQPS {
			rep.CapacityQPS = sr.OfferedQPS
		}
		rep.Steps = append(rep.Steps, sr)
	}
	return rep
}

// WriteCSV renders the per-step sweep as a latency-vs-rate curve, one row
// per step, for plotting the capacity knee without re-parsing the JSONL.
func (r *Report) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "step,offered_qps,achieved_qps,requests,errors_5xx,transport_errors,degraded,stalls,p50_ms,p95_ms,p99_ms,max_ms,sustained"); err != nil {
		return err
	}
	for _, st := range r.Steps {
		if _, err := fmt.Fprintf(w, "%d,%.3f,%.3f,%d,%d,%d,%d,%d,%.3f,%.3f,%.3f,%.3f,%t\n",
			st.Step, st.OfferedQPS, st.AchievedQPS, st.Requests,
			st.Errors5xx, st.Transport, st.Degraded, st.Stalls,
			st.Latency.P50, st.Latency.P95, st.Latency.P99, st.Latency.Max,
			st.Sustained); err != nil {
			return err
		}
	}
	return nil
}

// WriteText renders the report for a terminal.
func (r *Report) WriteText(w io.Writer) {
	fmt.Fprintf(w, "requests: %d  5xx: %d  4xx: %d  transport: %d  stalls: %d\n",
		r.Requests, r.Errors5xx, r.Errors4xx, r.Transport, r.Stalls)
	fmt.Fprintf(w, "degraded: %d (%.1f%%)\n", r.Degraded, 100*r.DegradedRate)
	fmt.Fprintf(w, "latency (sched-relative): p50 %.1fms  p95 %.1fms  p99 %.1fms  max %.1fms\n",
		r.Latency.P50, r.Latency.P95, r.Latency.P99, r.Latency.Max)

	names := make([]string, 0, len(r.Endpoints))
	for name := range r.Endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	fmt.Fprintf(w, "\n%-10s %8s %6s %6s %6s %10s %10s %10s  %s\n",
		"endpoint", "requests", "5xx", "4xx", "degr", "p50", "p95", "p99", "hit/miss/coal/prefetch")
	for _, name := range names {
		ep := r.Endpoints[name]
		fmt.Fprintf(w, "%-10s %8d %6d %6d %6d %8.1fms %8.1fms %8.1fms  %d/%d/%d/%d",
			name, ep.Requests, ep.Errors5xx, ep.Errors4xx, ep.Degraded,
			ep.Latency.P50, ep.Latency.P95, ep.Latency.P99,
			ep.Hits, ep.Misses, ep.Coalesced, ep.Prefetched)
		if ep.Hits+ep.Misses+ep.Coalesced+ep.Prefetched > 0 {
			fmt.Fprintf(w, " (warm %.0f%%)", 100*ep.WarmRate)
		}
		fmt.Fprintln(w)
	}

	if len(r.Steps) > 1 || (len(r.Steps) == 1 && r.Steps[0].OfferedQPS > 0) {
		fmt.Fprintf(w, "\n%-5s %10s %10s %8s %5s %7s %10s  %s\n",
			"step", "offered", "achieved", "requests", "5xx", "stalls", "p99", "sustained")
		for _, st := range r.Steps {
			fmt.Fprintf(w, "%-5d %7.1f/s %7.1f/s %8d %5d %7d %8.1fms  %t\n",
				st.Step, st.OfferedQPS, st.AchievedQPS, st.Requests, st.Errors5xx,
				st.Stalls, st.Latency.P99, st.Sustained)
		}
		if r.CapacityQPS > 0 {
			fmt.Fprintf(w, "\nmax sustainable rate: %.1f req/s\n", r.CapacityQPS)
		} else {
			fmt.Fprintf(w, "\nno step sustained its offered rate\n")
		}
	}
}
