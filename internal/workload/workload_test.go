package workload

import (
	"fmt"
	"math"
	"net/url"
	"reflect"
	"strings"
	"testing"
	"time"
)

func testGenes(n int) []string {
	g := make([]string, n)
	for i := range g {
		g[i] = fmt.Sprintf("G%03d", i)
	}
	return g
}

func testSpec() Spec {
	return Spec{
		Rate:     500,
		Duration: 2 * time.Second,
		Seed:     42,
		Genes:    testGenes(200),
		PaneRows: []int{250, 120, 40},
	}
}

// TestPlanDeterministic: a plan is a pure function of its spec — the same
// seed reproduces every op byte for byte, a different seed does not.
func TestPlanDeterministic(t *testing.T) {
	a, err := NewPlan(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewPlan(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same spec produced different plans")
	}
	spec := testSpec()
	spec.Seed = 43
	c, err := NewPlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Ops, c.Ops) {
		t.Fatal("different seeds produced identical plans")
	}
}

// TestPlanArrivalRate: the schedule is genuinely open-loop Poisson at the
// configured rate — op count within 5 sigma of rate*duration, arrivals
// sorted and inside the duration.
func TestPlanArrivalRate(t *testing.T) {
	spec := testSpec()
	plan, err := NewPlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := spec.Rate * spec.Duration.Seconds()
	sigma := math.Sqrt(want)
	if got := float64(len(plan.Ops)); math.Abs(got-want) > 5*sigma {
		t.Fatalf("op count %v, want %v ± %v", got, want, 5*sigma)
	}
	var prev time.Duration
	for i, op := range plan.Ops {
		if op.At < prev {
			t.Fatalf("op %d scheduled at %v before predecessor %v", i, op.At, prev)
		}
		if op.At >= spec.Duration {
			t.Fatalf("op %d scheduled at %v, beyond duration %v", i, op.At, spec.Duration)
		}
		prev = op.At
	}
}

// TestPlanMix: generated endpoints roughly follow the mix weights.
func TestPlanMix(t *testing.T) {
	spec := testSpec()
	spec.Rate = 2000
	spec.Mix = Mix{Search: 6, Heatmap: 2, Enrich: 1, Stats: 1}
	plan, err := NewPlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, op := range plan.Ops {
		counts[op.Endpoint]++
	}
	n := float64(len(plan.Ops))
	for ep, weight := range map[string]float64{"search": 6, "heatmap": 2, "enrich": 1, "stats": 1} {
		want := n * weight / 10
		if got := float64(counts[ep]); math.Abs(got-want) > 5*math.Sqrt(want) {
			t.Errorf("%s: %v ops, want ~%v", ep, got, want)
		}
	}
}

// TestTileWalkInBounds: every heatmap op's row window lies inside its
// pane, whatever the walk did, and requests the configured tile size.
func TestTileWalkInBounds(t *testing.T) {
	spec := testSpec()
	spec.Mix = Mix{Heatmap: 1}
	spec.Rate = 2000
	plan, err := NewPlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Ops) == 0 {
		t.Fatal("no ops")
	}
	for _, op := range plan.Ops {
		u, err := url.Parse(op.Path)
		if err != nil {
			t.Fatal(err)
		}
		q := u.Query()
		var ds, from, to int
		if _, err := fmt.Sscanf(q.Get("dataset"), "%d", &ds); err != nil {
			t.Fatalf("bad dataset in %q", op.Path)
		}
		if _, err := fmt.Sscanf(q.Get("rows"), "%d:%d", &from, &to); err != nil {
			t.Fatalf("bad rows in %q", op.Path)
		}
		if ds < 0 || ds >= len(spec.PaneRows) {
			t.Fatalf("dataset %d out of range in %q", ds, op.Path)
		}
		if from < 0 || to <= from || to > spec.PaneRows[ds] {
			t.Fatalf("window %d:%d out of bounds for pane %d (%d rows)", from, to, ds, spec.PaneRows[ds])
		}
		if q.Get("w") != "128" || q.Get("h") != "128" {
			t.Fatalf("tile size %s×%s, want 128×128", q.Get("w"), q.Get("h"))
		}
	}
}

// TestSearchOpsZipfPool: search queries come from a bounded pool (so hot
// queries repeat exactly, exercising the cache) with a skewed popularity —
// and each query has the configured number of distinct genes.
func TestSearchOpsZipfPool(t *testing.T) {
	spec := testSpec()
	spec.Mix = Mix{Search: 1}
	spec.Rate = 5000
	plan, err := NewPlan(spec)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	best := 0
	for _, op := range plan.Ops {
		u, _ := url.Parse(op.Path)
		q := u.Query().Get("q")
		counts[q]++
		if counts[q] > best {
			best = counts[q]
		}
		genes := strings.Split(q, ",")
		if len(genes) != 3 {
			t.Fatalf("query %q has %d genes, want 3", q, len(genes))
		}
		seen := map[string]bool{}
		for _, g := range genes {
			if seen[g] {
				t.Fatalf("query %q repeats gene %s", q, g)
			}
			seen[g] = true
		}
	}
	if len(counts) > 64 {
		t.Fatalf("%d distinct queries, want <= pool size 64", len(counts))
	}
	// Zipf skew: the most popular query dominates a uniform draw's share.
	if uniform := len(plan.Ops) / 64; best < 3*uniform {
		t.Fatalf("hottest query seen %d times; uniform share is %d — no Zipf skew?", best, uniform)
	}
}

// TestNewPlanValidation: impossible specs are rejected up front.
func TestNewPlanValidation(t *testing.T) {
	bad := []Spec{
		{Rate: 0, Duration: time.Second, Genes: testGenes(10), PaneRows: []int{10}},
		{Rate: 10, Duration: 0, Genes: testGenes(10), PaneRows: []int{10}},
		{Rate: 10, Duration: time.Second, Mix: Mix{Search: 1}, Genes: testGenes(2)},
		{Rate: 10, Duration: time.Second, Mix: Mix{Heatmap: 1}},
		{Rate: 10, Duration: time.Second, Mix: Mix{Heatmap: 1}, PaneRows: []int{0}},
		{Rate: 10, Duration: time.Second, Mix: Mix{Enrich: 1}},
		{Rate: 10, Duration: time.Second, Mix: Mix{Search: -1, Stats: 2}, Genes: testGenes(10)},
	}
	for i, spec := range bad {
		if _, err := NewPlan(spec); err == nil {
			t.Errorf("spec %d: expected error", i)
		}
	}
}
