// Wallrender reproduces the Figure-3 scenario: a ForestView session driven
// across a simulated scalable display wall. It renders synchronized frames
// on three wall configurations — desktop, the Princeton 8×3 projector
// grid, and a next-generation large wall — and reports the scalability
// numbers behind the paper's "two orders of magnitude" claim, then saves a
// downscaled composite of the Princeton wall frame.
//
//	go run ./examples/wallrender
package main

import (
	"fmt"
	"log"
	"time"

	"forestview/internal/cluster"
	"forestview/internal/core"
	"forestview/internal/synth"
	"forestview/internal/wall"
)

func main() {
	u := synth.NewUniverse(1000, 16, 5)
	collection := synth.StressCaseCollection(u, 300)
	var panes []*core.ClusteredDataset
	for _, ds := range collection {
		cd, err := core.Cluster(ds, core.ClusterOptions{
			Metric: cluster.PearsonDist, Linkage: cluster.AverageLinkage})
		if err != nil {
			log.Fatal(err)
		}
		panes = append(panes, cd)
	}
	fv, err := core.New(panes)
	if err != nil {
		log.Fatal(err)
	}
	if err := fv.SelectRegion(0, 0, 49); err != nil {
		log.Fatal(err)
	}
	scene := core.WallScene{FV: fv}

	configs := []struct {
		name string
		cfg  wall.Config
	}{
		{"desktop (1x1)", wall.Desktop2MP()},
		{"princeton (8x3)", wall.PrincetonWall()},
		{"large wall (10x5)", wall.LargeWall()},
	}
	desktopPixels := float64(configs[0].cfg.Pixels())

	fmt.Println("config              megapixels   vs desktop   frame ms   Mpix/s   skew ms")
	var princeton *wall.Wall
	for _, c := range configs {
		w, err := wall.NewWall(c.cfg, scene)
		if err != nil {
			log.Fatal(err)
		}
		// Warm-up + timed frames.
		w.RenderFrame()
		const frames = 3
		start := time.Now()
		var lastStats wall.FrameStats
		for i := 0; i < frames; i++ {
			lastStats = w.RenderFrame()
		}
		elapsed := time.Since(start)
		frameMS := float64(elapsed.Nanoseconds()) / frames / 1e6
		mpixPerS := float64(c.cfg.Pixels()) * frames / elapsed.Seconds() / 1e6
		fmt.Printf("%-18s  %9.1f   %9.1fx   %8.1f   %6.1f   %7.2f\n",
			c.name, float64(c.cfg.Pixels())/1e6,
			float64(c.cfg.Pixels())/desktopPixels,
			frameMS, mpixPerS, float64(lastStats.SkewNS)/1e6)
		if c.name == "princeton (8x3)" {
			princeton = w
		}
	}

	// Save a 1/4-scale composite of the Princeton wall so the output is a
	// reviewable file rather than an 18-megapixel PNG.
	small := princeton.Composite().Downscale(4)
	if err := small.SavePNG("wallrender.png"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwrote wallrender.png (quarter-scale composite of the 8x3 wall frame)")
	fmt.Println("the wall displays ~10-100x more pixels than the desktop — the paper's")
	fmt.Println("\"two orders of magnitude\" visualization-capability claim (Section 1).")
}
