// Stresscase reproduces the paper's Section-4 biological case study on
// synthetic data with a planted Environmental Stress Response (ESR):
//
// A collaborator studying stress response selected clusters of co-expressed
// genes in a nutrient-limitation study and a knockout compendium, then used
// ForestView's synchronized views to see how those genes behave in the
// classic stress datasets. Some clusters fell apart there — they were
// nutrient-specific effects. But certain clusters "exhibited a strong
// pattern of correlation within the stress response datasets as well",
// suggesting the general stress response supersedes the condition-specific
// effects.
//
// The program performs that exact workflow and quantifies every claim:
//
//  1. find the tightest co-expression windows in the nutrient-limitation
//     pane (what a biologist's eye picks out of the global view);
//  2. for each candidate, use the synchronized views to measure coherence
//     inside the two stress datasets;
//  3. classify candidates: nutrient-specific (coherent at home, incoherent
//     under stress) vs stress-signature (coherent everywhere);
//  4. verify against ground truth that the cross-study cluster is the
//     planted ESR;
//  5. render the four-pane session as a PNG.
package main

import (
	"fmt"
	"image/color"
	"log"
	"sort"

	"forestview/internal/cluster"
	"forestview/internal/core"
	"forestview/internal/render"
	"forestview/internal/stats"
	"forestview/internal/synth"
)

const (
	nutrientPane = 2
	windowSize   = 30
)

func main() {
	u := synth.NewUniverse(800, 16, 7)
	collection := synth.StressCaseCollection(u, 500)

	var panes []*core.ClusteredDataset
	for _, ds := range collection {
		cd, err := core.Cluster(ds, core.ClusterOptions{
			Metric: cluster.PearsonDist, Linkage: cluster.AverageLinkage})
		if err != nil {
			log.Fatal(err)
		}
		panes = append(panes, cd)
	}
	fv, err := core.New(panes)
	if err != nil {
		log.Fatal(err)
	}

	// Step 1: candidate windows — the tightest co-expressed stretches of
	// the nutrient-limitation pane in clustered display order.
	nd := panes[nutrientPane]
	rows := nd.RowsInDisplayOrder()
	type window struct {
		start int
		coh   float64
	}
	var wins []window
	for s := 0; s+windowSize <= len(rows); s += windowSize / 2 {
		wins = append(wins, window{s, stats.MeanPairwiseCorrelation(rows[s : s+6])})
	}
	sort.Slice(wins, func(a, b int) bool { return wins[a].coh > wins[b].coh })
	if len(wins) > 4 {
		wins = wins[:4]
	}
	fmt.Printf("step 1: the %d tightest clusters in %q:\n", len(wins), nd.Data.Name)

	// Steps 2-3: test every candidate across the stress panes.
	esr := make(map[string]bool)
	for _, id := range u.ModuleGeneIDs(u.ESRInduced) {
		esr[id] = true
	}
	for _, id := range u.ModuleGeneIDs(u.ESRRepressed) {
		esr[id] = true
	}
	type verdict struct {
		win         window
		stressCoh   float64
		esrFraction float64
		ids         []string
	}
	var verdicts []verdict
	for _, w := range wins {
		if err := fv.SelectRegion(nutrientPane, w.start, w.start+windowSize-1); err != nil {
			log.Fatal(err)
		}
		stressCoh := (selectionCoherence(fv, 0) + selectionCoherence(fv, 1)) / 2
		ids := append([]string(nil), fv.Selection().IDs...)
		hits := 0
		for _, id := range ids {
			if esr[id] {
				hits++
			}
		}
		verdicts = append(verdicts, verdict{
			win: w, stressCoh: stressCoh,
			esrFraction: float64(hits) / float64(len(ids)), ids: ids,
		})
		kind := "nutrient-specific effect (falls apart under stress)"
		if stressCoh > 0.4 {
			kind = "STRESS SIGNATURE (coherent in the stress data too)"
		}
		fmt.Printf("  rows %4d-%4d: nutrient coherence %.2f, stress coherence %+.2f -> %s\n",
			w.start, w.start+windowSize-1, w.coh, stressCoh, kind)
	}

	// Step 4: the cross-study cluster must be the planted ESR.
	sort.Slice(verdicts, func(a, b int) bool { return verdicts[a].stressCoh > verdicts[b].stressCoh })
	best := verdicts[0]
	fmt.Printf("\nstep 4: ground truth on the cross-study cluster: %.0f%% of its genes are\n",
		best.esrFraction*100)
	fmt.Println("planted ESR members — the signal really is the general stress response.")
	if best.stressCoh < 0.4 {
		log.Fatal("case study failed: no cluster survived the stress datasets")
	}
	if best.esrFraction < 0.5 {
		log.Fatalf("case study failed: cross-study cluster is only %.0f%% ESR", best.esrFraction*100)
	}
	fmt.Println("conclusion: effects of nutrient limitation can be superseded by the more")
	fmt.Println("general stress response — the paper's Section-4 insight, found in one session.")

	// Step 5: render the four-pane session with the ESR cluster selected.
	fv.SelectList(best.ids, "stress-signature cluster")
	c := render.NewCanvas(2000, 700, color.RGBA{A: 255})
	fv.RenderScene(c, 2000, 700)
	if err := c.SavePNG("stresscase.png"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote stresscase.png")
}

// selectionCoherence computes the mean pairwise correlation of the current
// selection's expression inside one pane via the synchronized zoom view.
func selectionCoherence(fv *core.ForestView, pane int) float64 {
	cd := fv.Pane(pane).DS
	var rows [][]float64
	for _, zr := range fv.ZoomContent(pane) {
		if zr.Row >= 0 {
			rows = append(rows, cd.Data.Row(zr.Row))
		}
	}
	if len(rows) > 12 {
		rows = rows[:12] // pairwise cost cap; 12 genes is plenty for the score
	}
	return stats.MeanPairwiseCorrelation(rows)
}
