// Spellsearch reproduces the Figure-4 workflow end to end: a SPELL query
// against a compendium, the ranked dataset and gene lists, and — the
// paper's Section-3 integration — the results flowing back into ForestView:
// panes reordered by dataset relevance, top genes selected and highlighted
// in every pane.
//
//	go run ./examples/spellsearch
package main

import (
	"fmt"
	"image/color"
	"log"

	"forestview/internal/cluster"
	"forestview/internal/core"
	"forestview/internal/render"
	"forestview/internal/synth"
)

func main() {
	// A compendium where each dataset activates a different subset of
	// biological processes — so only some datasets are informative about
	// any given query, which is precisely the problem SPELL solves.
	u := synth.NewUniverse(900, 18, 11)
	datasets, active := u.GenerateCompendium(synth.CompendiumSpec{
		NumDatasets: 6, MinExperiments: 12, MaxExperiments: 28,
		ActiveFraction: 0.35, Noise: 0.25, MissingRate: 0.02, Seed: 77,
	})

	var panes []*core.ClusteredDataset
	for _, ds := range datasets {
		cd, err := core.Cluster(ds, core.ClusterOptions{
			Metric: cluster.PearsonDist, Linkage: cluster.AverageLinkage})
		if err != nil {
			log.Fatal(err)
		}
		panes = append(panes, cd)
	}
	fv, err := core.New(panes)
	if err != nil {
		log.Fatal(err)
	}

	// Query: four genes of one biological process (the user knows these
	// genes are related and wants to find more like them).
	module := 5
	queryIDs := u.ModuleGeneIDs(module)[:4]
	fmt.Printf("query: %v (process %q)\n", queryIDs, u.Modules[module].Name)

	res, err := fv.ApplySpellSearch(nil, queryIDs, 15)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\ndatasets by relevance (panes now display in this order):")
	for i, d := range res.Result.Datasets {
		truth := "module inactive"
		for _, m := range active[d.Index] {
			if m == module {
				truth = "module ACTIVE (ground truth)"
			}
		}
		fmt.Printf("  %d. %-36s weight %.3f  [%s]\n", i+1, d.Name, d.Weight, truth)
	}

	fmt.Println("\ntop genes (selected + highlighted in every pane):")
	correct := 0
	moduleSet := make(map[string]bool)
	for _, id := range u.ModuleGeneIDs(module) {
		moduleSet[id] = true
	}
	for i, g := range res.Result.Genes {
		mark := " "
		if moduleSet[g.ID] {
			mark = "*"
			correct++
		}
		fmt.Printf("  %2d. %s %-10s score %.3f\n", i+1, mark, g.ID, g.Score)
	}
	fmt.Printf("\n%d/%d of the top genes belong to the query's process (* = ground truth)\n",
		correct, len(res.Result.Genes))

	c := render.NewCanvas(2400, 640, color.RGBA{A: 255})
	fv.RenderScene(c, 2400, 640)
	if err := c.SavePNG("spellsearch.png"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote spellsearch.png (panes in relevance order, results highlighted)")
}
