// Quickstart: the Figure-2 scenario in ~60 lines — three microarray
// datasets displayed as synchronized ForestView panes with a gene subset
// selected across all of them.
//
//	go run ./examples/quickstart
//
// Output: quickstart.png (the three-pane display) and the selected gene
// list on stdout.
package main

import (
	"fmt"
	"image/color"
	"log"
	"os"

	"forestview/internal/cluster"
	"forestview/internal/core"
	"forestview/internal/render"
	"forestview/internal/synth"
)

func main() {
	// 1. Three datasets over a shared synthetic genome (stand-ins for
	//    three published studies).
	u := synth.NewUniverse(600, 12, 42)
	datasets := synth.StressCaseCollection(u, 100)[:3]

	// 2. Hierarchically cluster each dataset, exactly as Cluster 3.0
	//    would before TreeView/ForestView display.
	var panes []*core.ClusteredDataset
	for _, ds := range datasets {
		cd, err := core.Cluster(ds, core.ClusterOptions{
			Metric:        cluster.PearsonDist,
			Linkage:       cluster.AverageLinkage,
			ClusterArrays: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		panes = append(panes, cd)
	}

	// 3. Open them all in one ForestView.
	fv, err := core.New(panes)
	if err != nil {
		log.Fatal(err)
	}

	// 4. Highlight a region in the first pane's global view. Synchronized
	//    viewing shows those genes at the same rows in every pane.
	if err := fv.SelectRegion(0, 40, 69); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("selected %d genes in %q; every pane now shows them aligned\n",
		fv.Selection().Len(), panes[0].Data.Name)

	// 5. Render the display to a PNG (on the wall this would be a frame).
	c := render.NewCanvas(1600, 700, color.RGBA{A: 255})
	fv.RenderScene(c, 1600, 700)
	if err := c.SavePNG("quickstart.png"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote quickstart.png")

	// 6. Export the gene list for downstream analysis.
	if err := fv.ExportGeneList(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
