package forestview

// Ablation benchmarks for the design choices DESIGN.md calls out. Each
// reports a quality metric next to the timing so the benefit of the design
// is visible in the bench output, not just the cost.

import (
	"fmt"
	"image/color"
	"testing"

	"forestview/internal/cluster"
	"forestview/internal/core"
	"forestview/internal/microarray"
	"forestview/internal/render"
	"forestview/internal/spell"
	"forestview/internal/synth"
	"forestview/internal/wall"
)

// newBenchCanvas allocates the full-HD canvas the rendering ablations draw
// into.
func newBenchCanvas() *render.Canvas {
	return render.NewCanvas(1920, 1080, color.RGBA{A: 255})
}

// AblationLeafOrdering: naive DFS leaf order vs the Gruvaeus-Wainer
// orientation pass. Metric: mean similarity of adjacent display rows.
func BenchmarkAblation_LeafOrdering(b *testing.B) {
	u := synth.NewUniverse(400, 12, 201)
	ds := u.Generate(synth.DatasetSpec{Name: "ord", NumExperiments: 24, Seed: 203})
	tree, err := cluster.Hierarchical(ds.Data, cluster.PearsonDist, cluster.AverageLinkage)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("naive-dfs", func(b *testing.B) {
		var q float64
		for i := 0; i < b.N; i++ {
			order := tree.LeafOrder()
			q = cluster.OrderQuality(ds.Data, order, cluster.PearsonDist)
		}
		b.ReportMetric(q, "adjacent-similarity")
	})
	b.Run("gruvaeus-wainer", func(b *testing.B) {
		var q float64
		for i := 0; i < b.N; i++ {
			order, err := cluster.OptimizeLeafOrder(tree, ds.Data, cluster.PearsonDist)
			if err != nil {
				b.Fatal(err)
			}
			q = cluster.OrderQuality(ds.Data, order, cluster.PearsonDist)
		}
		b.ReportMetric(q, "adjacent-similarity")
	})
}

// AblationSPELLWeighting: SPELL's coherence-based dataset weighting vs the
// naive uniform average. Metric: precision@10 of planted-module recovery.
func BenchmarkAblation_SPELLWeighting(b *testing.B) {
	u := synth.NewUniverse(600, 14, 207)
	mod := 4
	others := []int{5, 6, 7, 8, 9, 10}
	// A compendium where most datasets are uninformative about the module:
	// the regime that separates the two weighting schemes. One informative
	// dataset, five noise-only ones.
	compendium := []*microarray.Dataset{
		u.Generate(synth.DatasetSpec{Name: "informative", NumExperiments: 24,
			ActiveModules: []int{mod}, Noise: 0.2, Seed: 221}),
	}
	for i := 0; i < 5; i++ {
		compendium = append(compendium, u.Generate(synth.DatasetSpec{
			Name: fmt.Sprintf("noise-%d", i), NumExperiments: 20,
			ActiveModules: others, Noise: 0.3, Seed: int64(223 + i)}))
	}
	engine, err := spell.NewEngine(compendium)
	if err != nil {
		b.Fatal(err)
	}
	query := u.ModuleGeneIDs(mod)[:4]
	relevant := make(map[string]bool)
	for _, id := range u.ModuleGeneIDs(mod) {
		relevant[id] = true
	}
	for _, mode := range []struct {
		name    string
		uniform bool
	}{
		{"spell-weighted", false},
		{"uniform-baseline", true},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var p float64
			for i := 0; i < b.N; i++ {
				res, err := engine.Search(query, spell.Options{UniformWeights: mode.uniform})
				if err != nil {
					b.Fatal(err)
				}
				p = res.PrecisionAtK(10, relevant)
			}
			b.ReportMetric(p, "precision@10")
		})
	}
}

// AblationLinkage: clustering quality (silhouette at the true module
// count) across the three linkage rules.
func BenchmarkAblation_Linkage(b *testing.B) {
	u := synth.NewUniverse(200, 8, 211)
	ds := u.Generate(synth.DatasetSpec{Name: "lk", NumExperiments: 20, Noise: 0.3, Seed: 213})
	for _, lk := range []cluster.Linkage{cluster.AverageLinkage, cluster.CompleteLinkage, cluster.SingleLinkage} {
		b.Run(lk.String(), func(b *testing.B) {
			var sil float64
			for i := 0; i < b.N; i++ {
				tree, err := cluster.Hierarchical(ds.Data, cluster.PearsonDist, lk)
				if err != nil {
					b.Fatal(err)
				}
				assign, err := tree.Cut(8)
				if err != nil {
					b.Fatal(err)
				}
				sil = cluster.Silhouette(ds.Data, assign, cluster.PearsonDist)
			}
			b.ReportMetric(sil, "silhouette")
		})
	}
}

// AblationWallTransport: in-process coordination vs the TCP control plane
// on the same wall geometry — the cost of the cluster protocol itself.
func BenchmarkAblation_WallTransport(b *testing.B) {
	f := getFixture(b)
	scene := core.WallScene{FV: f.fv}
	cfg := wall.Config{TilesX: 2, TilesY: 2, TileW: 512, TileH: 384}
	b.Run("local-goroutines", func(b *testing.B) {
		w, err := wall.NewWall(cfg, scene)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			w.RenderFrame()
		}
	})
	b.Run("tcp-control-plane", func(b *testing.B) {
		nw, err := wall.StartNetWall(cfg, scene)
		if err != nil {
			b.Fatal(err)
		}
		defer nw.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := nw.RenderFrame(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// AblationSyncViews: the cost of synchronized (placeholder-aligned) zoom
// views vs unsynchronized native-order views during scene rendering.
func BenchmarkAblation_SyncViews(b *testing.B) {
	f := getFixture(b)
	if err := f.fv.SelectRegion(0, 0, 99); err != nil {
		b.Fatal(err)
	}
	c := newBenchCanvas()
	for _, mode := range []struct {
		name string
		sync bool
	}{
		{"synchronized", true},
		{"unsynchronized", false},
	} {
		b.Run(mode.name, func(b *testing.B) {
			f.fv.SetSynchronized(mode.sync)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.fv.RenderScene(c, 1920, 1080)
			}
		})
	}
	f.fv.SetSynchronized(true)
}
