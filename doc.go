// Package forestview is a from-scratch Go reproduction of "Scalable,
// Dynamic Analysis and Visualization for Genomic Datasets" (Wallace, Hibbs,
// Dunham, Sealfon, Troyanskaya, Li — IPPS 2007): the ForestView
// multi-dataset microarray visualization system, the SPELL compendium
// search engine and the GOLEM gene-ontology enrichment tool it integrates,
// and the scalable display wall substrate it runs on.
//
// The root package holds the experiment harness: one benchmark family per
// paper figure/claim (bench_test.go) and one integration test per
// experiment (experiments_test.go). The implementation lives under
// internal/ — see DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-vs-measured results. All three subsystems are served concurrently
// by cmd/forestviewd, the unified query daemon (internal/server); README.md
// has the quickstart.
package forestview
