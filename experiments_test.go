package forestview

// Integration tests, one per experiment row of DESIGN.md §9. Each
// verifies the qualitative "shape" the paper reports — who wins, what
// stays coherent, what falls apart — on the planted synthetic data.

import (
	"bytes"
	"image/color"
	"math"
	"sort"
	"strings"
	"testing"

	"forestview/internal/baseline"
	"forestview/internal/cluster"
	"forestview/internal/core"
	"forestview/internal/golem"
	"forestview/internal/microarray"
	"forestview/internal/ontology"
	"forestview/internal/render"
	"forestview/internal/spell"
	"forestview/internal/stats"
	"forestview/internal/synth"
	"forestview/internal/wall"
)

// TestF1_ArchitectureIntegration exercises every layer of the Figure-1
// architecture in one flow: datasets (files) → merged dataset interface →
// analysis → user interface operations → synchronized gene visualization.
func TestF1_ArchitectureIntegration(t *testing.T) {
	u := synth.NewUniverse(300, 10, 51)
	raw := synth.StressCaseCollection(u, 600)[:3]

	// Layer 1: datasets, including a PCL round trip (the cdt/pcl files of
	// the paper's architecture diagram).
	var datasets []*microarray.Dataset
	for _, ds := range raw {
		var buf bytes.Buffer
		if err := microarray.WritePCL(&buf, ds); err != nil {
			t.Fatal(err)
		}
		back, err := microarray.ReadPCL(&buf, ds.Name)
		if err != nil {
			t.Fatal(err)
		}
		datasets = append(datasets, back)
	}

	// Layer 2: clustering + ForestView construction (merged interface).
	var cds []*core.ClusteredDataset
	for _, ds := range datasets {
		cd, err := core.Cluster(ds, core.ClusterOptions{
			Metric: cluster.PearsonDist, Linkage: cluster.AverageLinkage, ClusterArrays: true})
		if err != nil {
			t.Fatal(err)
		}
		cds = append(cds, cd)
	}
	fv, err := core.New(cds)
	if err != nil {
		t.Fatal(err)
	}
	m := fv.Merged()
	if m.NumDatasets() != 3 || m.NumGenes() != 300 {
		t.Fatalf("merged interface: %d datasets, %d genes", m.NumDatasets(), m.NumGenes())
	}

	// Layer 3: analysis — find genes by annotation, order datasets.
	n, err := fv.SelectQuery("stress response induced")
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("annotation query found nothing")
	}
	fv.OrderPanesBy(map[string]float64{datasets[2].Name: 1})
	if fv.Pane(fv.PaneOrder()[0]).DS.Data.Name != datasets[2].Name {
		t.Fatal("dataset ordering failed")
	}

	// Layer 4: synchronized visualization — same genes, same rows.
	for p := 1; p < fv.NumPanes(); p++ {
		a, b := fv.ZoomContent(0), fv.ZoomContent(p)
		if len(a) != len(b) {
			t.Fatal("synchronized panes disagree on row count")
		}
		for i := range a {
			if a[i].GeneID != b[i].GeneID {
				t.Fatal("synchronized rows misaligned")
			}
		}
	}

	// Layer 5: UI exports.
	var list bytes.Buffer
	if err := fv.ExportGeneList(&list); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(list.String(), "#") {
		t.Fatal("export missing header")
	}
	var merged bytes.Buffer
	if err := fv.ExportMerged(&merged); err != nil {
		t.Fatal(err)
	}
	exp, err := microarray.ReadPCL(&merged, "m")
	if err != nil {
		t.Fatal(err)
	}
	wantCols := datasets[0].NumExperiments() + datasets[1].NumExperiments() + datasets[2].NumExperiments()
	if exp.NumExperiments() != wantCols {
		t.Fatalf("merged export columns = %d, want %d", exp.NumExperiments(), wantCols)
	}

	// Layer 6: the scene renders.
	c := render.NewCanvas(900, 400, color.RGBA{A: 255})
	fv.RenderScene(c, 900, 400)
}

// TestF2_SynchronizedPaneRendering verifies the Figure-2 view: a selected
// gene subset renders at identical row positions across all panes.
func TestF2_SynchronizedPaneRendering(t *testing.T) {
	u := synth.NewUniverse(200, 8, 53)
	raw := synth.StressCaseCollection(u, 700)[:3]
	var cds []*core.ClusteredDataset
	for _, ds := range raw {
		cd, err := core.Cluster(ds, core.ClusterOptions{
			Metric: cluster.PearsonDist, Linkage: cluster.AverageLinkage})
		if err != nil {
			t.Fatal(err)
		}
		cds = append(cds, cd)
	}
	fv, err := core.New(cds)
	if err != nil {
		t.Fatal(err)
	}
	if err := fv.SelectRegion(0, 10, 29); err != nil {
		t.Fatal(err)
	}
	// Synchronized: every pane shows 20 rows in identical gene order.
	for p := 0; p < 3; p++ {
		zc := fv.ZoomContent(p)
		if len(zc) != 20 {
			t.Fatalf("pane %d zoom rows = %d", p, len(zc))
		}
	}
	// Unsynchronized: each pane's native order — generally different.
	fv.SetSynchronized(false)
	orders := make([][]string, 3)
	for p := 0; p < 3; p++ {
		for _, zr := range fv.ZoomContent(p) {
			orders[p] = append(orders[p], zr.GeneID)
		}
	}
	diff := false
	for p := 1; p < 3; p++ {
		for i := range orders[p] {
			if orders[p][i] != orders[0][i] {
				diff = true
			}
		}
	}
	if !diff {
		t.Log("warning: unsynchronized orders coincided (possible but unlikely)")
	}
	// Render both modes to PNG-sized canvases without panic.
	c := render.NewCanvas(1200, 500, color.RGBA{A: 255})
	fv.RenderScene(c, 1200, 500)
	fv.SetSynchronized(true)
	fv.RenderScene(c, 1200, 500)
}

// TestF3_WallDeployment verifies the Figure-3 deployment path: the
// ForestView scene renders identically whether drawn directly, tiled
// locally, or tiled across the TCP control plane.
func TestF3_WallDeployment(t *testing.T) {
	u := synth.NewUniverse(150, 8, 59)
	raw := synth.StressCaseCollection(u, 800)[:2]
	var cds []*core.ClusteredDataset
	for _, ds := range raw {
		cd, err := core.Cluster(ds, core.ClusterOptions{
			Metric: cluster.PearsonDist, Linkage: cluster.AverageLinkage})
		if err != nil {
			t.Fatal(err)
		}
		cds = append(cds, cd)
	}
	fv, err := core.New(cds)
	if err != nil {
		t.Fatal(err)
	}
	_ = fv.SelectRegion(0, 0, 19)
	scene := core.WallScene{FV: fv}
	cfg := wall.Config{TilesX: 2, TilesY: 2, TileW: 160, TileH: 120}

	ref := render.NewCanvas(cfg.WallWidth(), cfg.WallHeight(), color.RGBA{A: 255})
	fv.RenderScene(ref, cfg.WallWidth(), cfg.WallHeight())

	lw, err := wall.NewWall(cfg, scene)
	if err != nil {
		t.Fatal(err)
	}
	lw.RenderFrame()
	local := lw.Composite()

	nw, err := wall.StartNetWall(cfg, scene)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	if _, err := nw.RenderFrame(); err != nil {
		t.Fatal(err)
	}
	net := nw.Composite()

	for y := 0; y < ref.Height(); y += 2 {
		for x := 0; x < ref.Width(); x += 2 {
			if local.At(x, y) != ref.At(x, y) {
				t.Fatalf("local tile mismatch at (%d,%d)", x, y)
			}
			if net.At(x, y) != ref.At(x, y) {
				t.Fatalf("net tile mismatch at (%d,%d)", x, y)
			}
		}
	}
}

// TestF4_SPELLSearchQuality verifies the Figure-4 result shape: SPELL ranks
// the datasets where the query is coherent first and recovers the planted
// module with high precision.
func TestF4_SPELLSearchQuality(t *testing.T) {
	u := synth.NewUniverse(500, 12, 61)
	mod := 3
	other := []int{4, 5, 6, 7, 8}
	dss := []*microarray.Dataset{
		u.Generate(synth.DatasetSpec{Name: "informative-1", NumExperiments: 24,
			ActiveModules: []int{mod}, Noise: 0.2, Seed: 63}),
		u.Generate(synth.DatasetSpec{Name: "informative-2", NumExperiments: 20,
			ActiveModules: []int{mod, other[0]}, Noise: 0.2, Seed: 67}),
		u.Generate(synth.DatasetSpec{Name: "irrelevant-1", NumExperiments: 22,
			ActiveModules: other, Noise: 0.2, Seed: 71}),
		u.Generate(synth.DatasetSpec{Name: "irrelevant-2", NumExperiments: 18,
			ActiveModules: other[1:], Noise: 0.2, Seed: 73}),
	}
	engine, err := spell.NewEngine(dss)
	if err != nil {
		t.Fatal(err)
	}
	ids := u.ModuleGeneIDs(mod)
	res, err := engine.Search(ids[:4], spell.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Shape 1: both informative datasets rank above both irrelevant ones.
	rank := make(map[string]int)
	for i, d := range res.Datasets {
		rank[d.Name] = i
	}
	if rank["informative-1"] > 1 || rank["informative-2"] > 1 {
		t.Fatalf("informative datasets not on top: %v", rank)
	}
	// Shape 2: planted-module recovery precision.
	relevant := make(map[string]bool)
	for _, id := range ids {
		relevant[id] = true
	}
	k := 10
	if rest := len(ids) - 4; rest < k {
		k = rest
	}
	if p := res.PrecisionAtK(k, relevant); p < 0.7 {
		t.Fatalf("precision@%d = %v, want >= 0.7", k, p)
	}
}

// TestF5_GOLEMEnrichmentShape verifies the Figure-5 result: the planted
// module's term tops the enrichment list, ancestors are significant but
// weaker, and the local map contains the path to the root.
func TestF5_GOLEMEnrichmentShape(t *testing.T) {
	u := synth.NewUniverse(600, 12, 79)
	var names []string
	for _, m := range u.Modules {
		names = append(names, m.Name)
	}
	onto, leafOf, err := ontology.Synthetic(ontology.SyntheticSpec{LeafNames: names, Seed: 83})
	if err != nil {
		t.Fatal(err)
	}
	ann := ontology.AnnotateFromModules(u.Annotations(), leafOf)
	enr, err := golem.NewEnricher(onto, ann, u.GeneIDs())
	if err != nil {
		t.Fatal(err)
	}
	mod := 4
	results, err := enr.Analyze(u.ModuleGeneIDs(mod), golem.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := leafOf[u.Modules[mod].Name]
	if results[0].TermID != want {
		t.Fatalf("top term = %s, want %s", results[0].TermID, want)
	}
	if results[0].Bonferroni > 1e-6 {
		t.Fatalf("planted term corrected p = %v", results[0].Bonferroni)
	}
	// Local map around the top terms reaches the root.
	g := golem.LocalMap(onto, golem.TopTerms(results, 3), 1)
	root := onto.Roots()[0]
	if !g.Contains(root) {
		t.Fatal("local map misses the ontology root")
	}
	lay := golem.LayoutGraph(g, 4)
	if lay.Pos[root].Layer != 0 {
		t.Fatal("root not on layer 0")
	}
	c := render.NewCanvas(800, 400, color.RGBA{A: 255})
	render.RenderGOGraph(c, render.Rect{X: 0, Y: 0, W: 800, H: 400}, g, lay, render.GOGraphOptions{})
}

// TestF6_CombinedPipeline drives the Figure-6 composite: a selection flows
// to SPELL (reordering panes) and GOLEM (enrichment), and everything
// renders into one combined screen.
func TestF6_CombinedPipeline(t *testing.T) {
	u := synth.NewUniverse(400, 10, 89)
	col := synth.StressCaseCollection(u, 900)
	var cds []*core.ClusteredDataset
	for _, ds := range col {
		cd, err := core.Cluster(ds, core.ClusterOptions{
			Metric: cluster.PearsonDist, Linkage: cluster.AverageLinkage})
		if err != nil {
			t.Fatal(err)
		}
		cds = append(cds, cd)
	}
	fv, err := core.New(cds)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, m := range u.Modules {
		names = append(names, m.Name)
	}
	onto, leafOf, err := ontology.Synthetic(ontology.SyntheticSpec{LeafNames: names, Seed: 97})
	if err != nil {
		t.Fatal(err)
	}
	ann := ontology.AnnotateFromModules(u.Annotations(), leafOf)
	enr, err := golem.NewEnricher(onto, ann, u.GeneIDs())
	if err != nil {
		t.Fatal(err)
	}

	// SPELL: query with ESR genes; the stress datasets must surface.
	query := u.ModuleGeneIDs(u.ESRInduced)[:4]
	sres, err := fv.ApplySpellSearch(nil, query, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(sres.SelectedGenes) != 25 {
		t.Fatalf("selected = %d", len(sres.SelectedGenes))
	}

	// GOLEM on the SPELL selection: the ESR term must dominate.
	results, err := fv.EnrichSelection(enr, golem.Options{})
	if err != nil {
		t.Fatal(err)
	}
	esrTerm := leafOf[u.Modules[u.ESRInduced].Name]
	found := false
	for _, r := range results[:minInt(3, len(results))] {
		if r.TermID == esrTerm {
			found = true
		}
	}
	if !found {
		t.Fatalf("ESR term not in top enrichments: %v", golem.TopTerms(results, 3))
	}

	// Combined screen: ForestView + GO map on one canvas (Figure 6).
	c := render.NewCanvas(1800, 700, color.RGBA{A: 255})
	fv.RenderScene(c, 1400, 700)
	g := golem.LocalMap(onto, golem.TopTerms(results, 3), 1)
	lay := golem.LayoutGraph(g, 4)
	render.RenderGOGraph(c, render.Rect{X: 1410, Y: 10, W: 380, H: 680}, g, lay, render.GOGraphOptions{})
}

// TestC1_PixelCapabilityClaim checks the §1 claim: wall configurations
// reach ~two orders of magnitude more pixels than the 2 MP desktop.
func TestC1_PixelCapabilityClaim(t *testing.T) {
	d := float64(wall.Desktop2MP().Pixels())
	p := float64(wall.PrincetonWall().Pixels())
	l := float64(wall.LargeWall().Pixels())
	if p/d < 5 {
		t.Fatalf("princeton/desktop = %.1f, want ~10x", p/d)
	}
	if l/d < 50 || l/d > 200 {
		t.Fatalf("large/desktop = %.1f, want ~100x", l/d)
	}
}

// TestC2_StressCaseStudy is the scripted Section-4 case study with
// assertions (the stresscase example, minus prose).
func TestC2_StressCaseStudy(t *testing.T) {
	u := synth.NewUniverse(800, 16, 7)
	col := synth.StressCaseCollection(u, 500)
	var cds []*core.ClusteredDataset
	for _, ds := range col {
		cd, err := core.Cluster(ds, core.ClusterOptions{
			Metric: cluster.PearsonDist, Linkage: cluster.AverageLinkage})
		if err != nil {
			t.Fatal(err)
		}
		cds = append(cds, cd)
	}
	fv, err := core.New(cds)
	if err != nil {
		t.Fatal(err)
	}

	coherence := func(pane int) float64 {
		cd := fv.Pane(pane).DS
		var rows [][]float64
		for _, zr := range fv.ZoomContent(pane) {
			if zr.Row >= 0 {
				rows = append(rows, cd.Data.Row(zr.Row))
			}
			if len(rows) == 10 {
				break
			}
		}
		return stats.MeanPairwiseCorrelation(rows)
	}

	// Scan candidate windows of the nutrient pane (index 2).
	const win = 30
	nd := cds[2]
	rows := nd.RowsInDisplayOrder()
	type cand struct {
		start             int
		homeCoh, crossCoh float64
		esrFraction       float64
	}
	esr := make(map[string]bool)
	for _, id := range u.ModuleGeneIDs(u.ESRInduced) {
		esr[id] = true
	}
	for _, id := range u.ModuleGeneIDs(u.ESRRepressed) {
		esr[id] = true
	}
	var cands []cand
	for s := 0; s+win <= len(rows); s += win {
		if err := fv.SelectRegion(2, s, s+win-1); err != nil {
			t.Fatal(err)
		}
		home := coherence(2)
		cross := (coherence(0) + coherence(1)) / 2
		hits := 0
		for _, id := range fv.Selection().IDs {
			if esr[id] {
				hits++
			}
		}
		cands = append(cands, cand{
			start: s, homeCoh: home, crossCoh: cross,
			esrFraction: float64(hits) / win,
		})
	}
	// Shape 1: there exists a tight home cluster that stays coherent under
	// stress — and it is the ESR.
	sort.Slice(cands, func(a, b int) bool { return cands[a].crossCoh > cands[b].crossCoh })
	best := cands[0]
	if best.crossCoh < 0.4 {
		t.Fatalf("no cross-study coherent cluster found (best %.2f)", best.crossCoh)
	}
	if best.esrFraction < 0.6 {
		t.Fatalf("cross-study cluster only %.0f%% ESR", best.esrFraction*100)
	}
	// Shape 2: tight home clusters that are NOT ESR fall apart in stress.
	foundSpecific := false
	for _, c := range cands {
		if c.homeCoh > 0.6 && c.esrFraction < 0.2 {
			foundSpecific = true
			if math.Abs(c.crossCoh) > 0.45 {
				t.Fatalf("nutrient-specific cluster too coherent under stress: %.2f", c.crossCoh)
			}
		}
	}
	if !foundSpecific {
		t.Log("note: no strongly nutrient-specific window at this stride (non-fatal)")
	}
}

// TestC3_WorkflowComparison verifies the §4 workflow claim: the baseline's
// manual steps grow linearly with dataset count, ForestView's stay
// constant.
func TestC3_WorkflowComparison(t *testing.T) {
	u := synth.NewUniverse(200, 8, 101)
	build := func(n int) []*core.ClusteredDataset {
		var out []*core.ClusteredDataset
		for i := 0; i < n; i++ {
			ds := u.Generate(synth.DatasetSpec{
				Name: "w" + string(rune('A'+i)), NumExperiments: 10, Seed: int64(103 + i)})
			cd, err := core.Cluster(ds, core.ClusterOptions{
				Metric: cluster.PearsonDist, Linkage: cluster.AverageLinkage})
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, cd)
		}
		return out
	}
	// "Over a dozen independent instances": 13 viewers.
	cds := build(13)
	wfBase, _, err := baseline.CrossDatasetComparison(cds, 0, 0, 19)
	if err != nil {
		t.Fatal(err)
	}
	fv, err := core.New(cds)
	if err != nil {
		t.Fatal(err)
	}
	wfFV, err := baseline.ForestViewComparison(fv, 0, 0, 19)
	if err != nil {
		t.Fatal(err)
	}
	if len(wfBase.Steps) < 10*len(wfFV.Steps) {
		t.Fatalf("baseline %d steps vs ForestView %d: want >= 10x gap",
			len(wfBase.Steps), len(wfFV.Steps))
	}
	if wfBase.Transfers != 12 {
		t.Fatalf("baseline transfers = %d, want 12", wfBase.Transfers)
	}
	if wfFV.Transfers != 0 {
		t.Fatal("ForestView should need no transfers")
	}
}

// TestC4_PaperScaleLoad loads a paper-scale dataset (50,000 genes ×
// hundreds of columns — "millions of pieces of information") through the
// full model and renders it.
func TestC4_PaperScaleLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale load skipped in -short")
	}
	u := synth.NewUniverse(50000, 40, 107)
	ds := u.Generate(synth.DatasetSpec{Name: "huge", NumExperiments: 200, Seed: 109})
	if ds.NumGenes() != 50000 || ds.NumExperiments() != 200 {
		t.Fatalf("dims = %dx%d", ds.NumGenes(), ds.NumExperiments())
	}
	// 10M values.
	cd, err := core.FromDataset(ds)
	if err != nil {
		t.Fatal(err)
	}
	fv, err := core.New([]*core.ClusteredDataset{cd})
	if err != nil {
		t.Fatal(err)
	}
	if err := fv.SelectRegion(0, 0, 99); err != nil {
		t.Fatal(err)
	}
	c := render.NewCanvas(1920, 1080, color.RGBA{A: 255})
	fv.RenderScene(c, 1920, 1080)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
