package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunSmallWall(t *testing.T) {
	out := filepath.Join(t.TempDir(), "wall.png")
	if err := run("", 2, 1, 160, 120, 2, false, out, 200, 2, 1); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(out)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() == 0 {
		t.Fatal("composite empty")
	}
}

func TestRunNetMode(t *testing.T) {
	if err := run("", 2, 1, 64, 48, 1, true, "", 150, 2, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunPresets(t *testing.T) {
	// The desktop preset should work quickly with a small scene.
	if err := run("desktop", 0, 0, 0, 0, 1, false, "", 150, 2, 1); err != nil {
		t.Fatal(err)
	}
	if err := run("nope", 1, 1, 8, 8, 1, false, "", 100, 1, 1); err == nil {
		t.Fatal("unknown preset should error")
	}
}
