// Command wallsim drives the display wall simulation with a ForestView
// scene: it renders synchronized frames across the tile grid, reports the
// per-frame statistics the Figure-3 experiment summarizes (render time,
// barrier skew, pixel throughput), and can save the composited wall image.
//
// Usage:
//
//	wallsim -preset princeton -frames 10
//	wallsim -tiles-x 4 -tiles-y 2 -tile-w 1024 -tile-h 768 -net -out wall.png
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"forestview/internal/cluster"
	"forestview/internal/core"
	"forestview/internal/render"
	"forestview/internal/synth"
	"forestview/internal/wall"
)

func main() {
	var (
		preset  = flag.String("preset", "", "wall preset: desktop, princeton, large")
		tilesX  = flag.Int("tiles-x", 4, "tile columns")
		tilesY  = flag.Int("tiles-y", 2, "tile rows")
		tileW   = flag.Int("tile-w", 1024, "tile width")
		tileH   = flag.Int("tile-h", 768, "tile height")
		frames  = flag.Int("frames", 5, "frames to render")
		netMode = flag.Bool("net", false, "drive nodes over loopback TCP (cluster protocol)")
		out     = flag.String("out", "", "save the final composited wall image as PNG")
		genes   = flag.Int("genes", 1200, "genes per synthetic dataset")
		nData   = flag.Int("datasets", 4, "datasets (panes)")
		seed    = flag.Int64("seed", 1, "generator seed")
	)
	flag.Parse()
	if err := run(*preset, *tilesX, *tilesY, *tileW, *tileH, *frames, *netMode, *out, *genes, *nData, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "wallsim:", err)
		os.Exit(1)
	}
}

func run(preset string, tilesX, tilesY, tileW, tileH, frames int, netMode bool, out string, genes, nData int, seed int64) error {
	cfg := wall.Config{TilesX: tilesX, TilesY: tilesY, TileW: tileW, TileH: tileH}
	switch preset {
	case "desktop":
		cfg = wall.Desktop2MP()
	case "princeton":
		cfg = wall.PrincetonWall()
	case "large":
		cfg = wall.LargeWall()
	case "":
	default:
		return fmt.Errorf("unknown preset %q (want desktop, princeton, large)", preset)
	}

	// Build the ForestView scene.
	u := synth.NewUniverse(genes, 20, seed)
	col := synth.StressCaseCollection(u, seed+10)
	if nData < len(col) {
		col = col[:nData]
	}
	var cds []*core.ClusteredDataset
	for _, ds := range col {
		cd, err := core.Cluster(ds, core.ClusterOptions{
			Metric: cluster.PearsonDist, Linkage: cluster.AverageLinkage})
		if err != nil {
			return err
		}
		cds = append(cds, cd)
	}
	fv, err := core.New(cds)
	if err != nil {
		return err
	}
	// A selection exercises the synchronized zoom path during rendering.
	if err := fv.SelectRegion(0, 0, 39); err != nil {
		return err
	}
	scene := core.WallScene{FV: fv}

	fmt.Printf("wall: %dx%d tiles of %dx%d = %.1f megapixels (%d nodes, net=%v)\n",
		cfg.TilesX, cfg.TilesY, cfg.TileW, cfg.TileH,
		float64(cfg.Pixels())/1e6, cfg.TilesX*cfg.TilesY, netMode)

	renderOne, composite, cleanup, err := makeWall(cfg, scene, netMode)
	if err != nil {
		return err
	}
	defer cleanup()

	var totalNS int64
	for f := 0; f < frames; f++ {
		start := time.Now()
		fs, err := renderOne()
		if err != nil {
			return err
		}
		frameNS := time.Since(start).Nanoseconds()
		totalNS += frameNS
		fmt.Printf("frame %d: %.1f ms wall-clock, slowest tile %.1f ms, barrier skew %.2f ms, %.1f Mpix/s\n",
			fs.Frame, float64(frameNS)/1e6, float64(fs.MaxRenderNS)/1e6,
			float64(fs.SkewNS)/1e6, float64(fs.TotalPixels)/(float64(frameNS)/1e9)/1e6)
	}
	fmt.Printf("mean frame: %.1f ms; sustained %.1f Mpix/s\n",
		float64(totalNS)/float64(frames)/1e6,
		float64(cfg.Pixels())*float64(frames)/(float64(totalNS)/1e9)/1e6)

	if out != "" {
		comp := composite()
		if err := comp.SavePNG(out); err != nil {
			return err
		}
		fmt.Printf("composited wall image -> %s\n", out)
	}
	return nil
}

// makeWall abstracts local vs net mode behind closures.
func makeWall(cfg wall.Config, scene wall.Scene, netMode bool) (
	func() (wall.FrameStats, error), func() *render.Canvas, func(), error) {
	if netMode {
		nw, err := wall.StartNetWall(cfg, scene)
		if err != nil {
			return nil, nil, nil, err
		}
		return func() (wall.FrameStats, error) { return nw.RenderFrame() },
			nw.Composite, nw.Close, nil
	}
	w, err := wall.NewWall(cfg, scene)
	if err != nil {
		return nil, nil, nil, err
	}
	return func() (wall.FrameStats, error) { return w.RenderFrame(), nil },
		w.Composite, func() {}, nil
}
