package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"forestview/internal/microarray"
	"forestview/internal/ontology"
)

func TestRunGeneratesWorkspace(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, 120, 8, 2, 7, false, true, 0.25, 0.02); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var pcl, cdt, gtr, atr, obo, assoc int
	for _, e := range entries {
		switch {
		case strings.HasSuffix(e.Name(), ".pcl"):
			pcl++
		case strings.HasSuffix(e.Name(), ".cdt"):
			cdt++
		case strings.HasSuffix(e.Name(), ".gtr"):
			gtr++
		case strings.HasSuffix(e.Name(), ".atr"):
			atr++
		case e.Name() == "ontology.obo":
			obo++
		case e.Name() == "associations.tsv":
			assoc++
		}
	}
	if pcl != 2 || cdt != 2 || gtr != 2 || atr != 2 || obo != 1 || assoc != 1 {
		t.Fatalf("workspace files: pcl=%d cdt=%d gtr=%d atr=%d obo=%d assoc=%d",
			pcl, cdt, gtr, atr, obo, assoc)
	}
	// The generated files parse back.
	for _, e := range entries {
		path := filepath.Join(dir, e.Name())
		switch {
		case strings.HasSuffix(e.Name(), ".pcl"):
			f, _ := os.Open(path)
			ds, err := microarray.ReadPCL(f, e.Name())
			f.Close()
			if err != nil {
				t.Fatalf("%s: %v", e.Name(), err)
			}
			if ds.NumGenes() != 120 {
				t.Fatalf("%s genes = %d", e.Name(), ds.NumGenes())
			}
		case e.Name() == "ontology.obo":
			f, _ := os.Open(path)
			o, err := ontology.ReadOBO(f)
			f.Close()
			if err != nil {
				t.Fatal(err)
			}
			if o.Len() == 0 {
				t.Fatal("empty ontology")
			}
		case e.Name() == "associations.tsv":
			f, _ := os.Open(path)
			a, err := ontology.ReadAssociations(f)
			f.Close()
			if err != nil {
				t.Fatal(err)
			}
			if a.Len() != 120 {
				t.Fatalf("associations = %d", a.Len())
			}
		}
	}
}

func TestRunCaseStudyMode(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, 100, 8, 0, 3, true, false, 0.25, 0.02); err != nil {
		t.Fatal(err)
	}
	entries, _ := os.ReadDir(dir)
	pcl := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".pcl") {
			pcl++
		}
	}
	if pcl != 4 {
		t.Fatalf("case-study datasets = %d, want 4", pcl)
	}
}
