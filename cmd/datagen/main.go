// Command datagen generates a synthetic genomic data workspace: a
// compendium of PCL expression datasets over a shared synthetic genome, the
// matching clustered CDT/GTR files, a synthetic gene ontology (OBO) and
// gene associations — everything the other tools consume. It substitutes
// for the published yeast compendia the paper analyzes, which cannot ship
// with an offline reproduction.
//
// Usage:
//
//	datagen -out ./data -genes 2000 -modules 25 -datasets 6 -seed 1
//	datagen -out ./data -casestudy           # the Section-4 trio
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"forestview/internal/cluster"
	"forestview/internal/core"
	"forestview/internal/microarray"
	"forestview/internal/ontology"
	"forestview/internal/synth"
)

func main() {
	var (
		outDir    = flag.String("out", "data", "output directory")
		nGenes    = flag.Int("genes", 2000, "genes in the synthetic genome")
		nModules  = flag.Int("modules", 25, "co-regulation modules")
		nDatasets = flag.Int("datasets", 6, "datasets in the compendium")
		seed      = flag.Int64("seed", 1, "random seed")
		caseStudy = flag.Bool("casestudy", false, "generate the Section-4 stress case-study collection instead of a generic compendium")
		doCluster = flag.Bool("cluster", true, "also hierarchically cluster each dataset and write CDT/GTR files")
		noise     = flag.Float64("noise", 0.25, "measurement noise (log2 sd)")
		missing   = flag.Float64("missing", 0.02, "missing-value rate")
	)
	flag.Parse()

	if err := run(*outDir, *nGenes, *nModules, *nDatasets, *seed, *caseStudy, *doCluster, *noise, *missing); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(outDir string, nGenes, nModules, nDatasets int, seed int64, caseStudy, doCluster bool, noise, missing float64) error {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return err
	}
	u := synth.NewUniverse(nGenes, nModules, seed)
	fmt.Printf("universe: %d genes in %d modules (seed %d)\n", len(u.Genes), len(u.Modules), seed)

	var datasets []*microarray.Dataset
	if caseStudy {
		datasets = synth.StressCaseCollection(u, seed+100)
	} else {
		dss, _ := u.GenerateCompendium(synth.CompendiumSpec{
			NumDatasets: nDatasets, MinExperiments: 10, MaxExperiments: 40,
			ActiveFraction: 0.5, Noise: noise, MissingRate: missing, Seed: seed + 100,
		})
		datasets = dss
	}

	for _, ds := range datasets {
		base := sanitize(ds.Name)
		if err := writePCL(filepath.Join(outDir, base+".pcl"), ds); err != nil {
			return err
		}
		fmt.Printf("wrote %s.pcl (%d genes x %d experiments)\n", base, ds.NumGenes(), ds.NumExperiments())
		if !doCluster {
			continue
		}
		cd, err := core.Cluster(ds, core.ClusterOptions{
			Metric: cluster.PearsonDist, Linkage: cluster.AverageLinkage, ClusterArrays: true,
		})
		if err != nil {
			return err
		}
		if err := writeClustered(outDir, base, cd); err != nil {
			return err
		}
		fmt.Printf("wrote %s.cdt/.gtr/.atr\n", base)
	}

	// Ontology + associations from ground truth.
	var names []string
	for _, m := range u.Modules {
		names = append(names, m.Name)
	}
	onto, leafOf, err := ontology.Synthetic(ontology.SyntheticSpec{LeafNames: names, Seed: seed + 7})
	if err != nil {
		return err
	}
	of, err := os.Create(filepath.Join(outDir, "ontology.obo"))
	if err != nil {
		return err
	}
	if err := ontology.WriteOBO(of, onto); err != nil {
		of.Close()
		return err
	}
	if err := of.Close(); err != nil {
		return err
	}
	ann := ontology.AnnotateFromModules(u.Annotations(), leafOf)
	af, err := os.Create(filepath.Join(outDir, "associations.tsv"))
	if err != nil {
		return err
	}
	if err := ontology.WriteAssociations(af, ann); err != nil {
		af.Close()
		return err
	}
	if err := af.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote ontology.obo (%d terms) and associations.tsv (%d genes)\n", onto.Len(), ann.Len())
	return nil
}

func writePCL(path string, ds *microarray.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := microarray.WritePCL(f, ds); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeClustered(dir, base string, cd *core.ClusteredDataset) error {
	// CDT rows in display order with GID/AID links, plus GTR/ATR trees.
	ordered := cd.Data.Subset(cd.Data.Name, cd.DisplayOrder)
	gids := make([]string, ordered.NumGenes())
	for pos, row := range cd.DisplayOrder {
		gids[pos] = microarray.GeneLeafID(row)
	}
	var aids []string
	if cd.ArrayTree != nil {
		aids = make([]string, cd.Data.NumExperiments())
		for j := range aids {
			aids[j] = microarray.ArrayLeafID(j)
		}
	}
	f, err := os.Create(filepath.Join(dir, base+".cdt"))
	if err != nil {
		return err
	}
	if err := microarray.WriteCDT(f, &microarray.CDT{Dataset: ordered, GIDs: gids, AIDs: aids}); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	gf, err := os.Create(filepath.Join(dir, base+".gtr"))
	if err != nil {
		return err
	}
	if err := cluster.WriteTree(gf, cd.GeneTree, cluster.GeneTree); err != nil {
		gf.Close()
		return err
	}
	if err := gf.Close(); err != nil {
		return err
	}
	if cd.ArrayTree != nil {
		af, err := os.Create(filepath.Join(dir, base+".atr"))
		if err != nil {
			return err
		}
		if err := cluster.WriteTree(af, cd.ArrayTree, cluster.ArrayTree); err != nil {
			af.Close()
			return err
		}
		if err := af.Close(); err != nil {
			return err
		}
	}
	return nil
}

func sanitize(name string) string {
	r := strings.NewReplacer(" ", "_", "(", "", ")", "", "/", "-", ":", "")
	return r.Replace(name)
}
