// Command forestviewd is the unified ForestView query daemon: it loads a
// compendium once, prepares every paper subsystem — the SPELL search
// engine, the GOLEM enrichment context and clustered heatmap panes — and
// serves them concurrently over HTTP behind a shared cache:
//
//	/            SPELL HTML search page (internal/spellweb)
//	/api/search  SPELL ranked datasets + genes (JSON)
//	/api/enrich  GOLEM GO-term enrichment of a gene list (JSON)
//	/api/heatmap clustered expression heatmap tiles (PNG)
//	/api/stats   per-endpoint latency / cache hit-rate counters (JSON)
//	/healthz     liveness probe
//
// The daemon also scales horizontally (DESIGN.md §4–§6): with -role=shard
// it serves SPELL partials for its rendezvous-assigned slice of the
// compendium at /api/shard/v1/search — and, when booted with an ontology,
// GOLEM slice tallies at /api/shard/v1/enrich — while -role=coordinator
// scatters every search AND enrichment over the -shards backends, merging
// search partials with global weight renormalization and enrichment
// tallies exactly (golem.MergeCounts), degrading gracefully when shards
// fail.
//
// Usage:
//
//	forestviewd -demo -addr :8080
//	forestviewd -files a.pcl,b.pcl,c.pcl -obo go.obo -assoc assoc.tsv
//	curl 'localhost:8080/api/search?q=YAL001C,YBR072W&top=10'
//	curl 'localhost:8080/api/enrich?genes=YAL001C,YAL002W&maxp=0.05'
//	curl 'localhost:8080/api/heatmap?dataset=0&w=512&h=512' -o tile.png
//
// A two-shard topology on one machine (see README for the walkthrough).
// Every daemon gets the SAME -shards list — the entries are the fleet's
// shard identities, hashed for dataset ownership by shards and
// coordinator alike, so they must match byte for byte:
//
//	forestviewd -demo -role=shard -shards 127.0.0.1:9001,127.0.0.1:9002 -self 127.0.0.1:9001 -addr 127.0.0.1:9001
//	forestviewd -demo -role=shard -shards 127.0.0.1:9001,127.0.0.1:9002 -self 127.0.0.1:9002 -addr 127.0.0.1:9002
//	forestviewd -role=coordinator -shards 127.0.0.1:9001,127.0.0.1:9002 -addr 127.0.0.1:8080
//
// With -replication=2 every dataset is held by its top-2 rendezvous
// shards and any single shard can die without degrading results; the
// coordinator's -fleet-token enables POST /api/admin/fleet for runtime
// joins and leaves (see DESIGN.md §5).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"forestview/internal/cluster"
	"forestview/internal/golem"
	"forestview/internal/microarray"
	"forestview/internal/ontology"
	"forestview/internal/server"
	"forestview/internal/shard"
	"forestview/internal/spell"
	"forestview/internal/synth"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8080", "listen address")
		files      = flag.String("files", "", "comma-separated PCL files forming the compendium")
		oboPath    = flag.String("obo", "", "OBO ontology file enabling /api/enrich on file compendia")
		assocPath  = flag.String("assoc", "", "gene association file (gene<TAB>term), required with -obo")
		demo       = flag.Bool("demo", false, "serve a synthetic demo compendium (default when -files is empty)")
		precluster = flag.Bool("precluster", false, "cluster every dataset at startup instead of lazily on first heatmap request")
		genes      = flag.Int("genes", 1500, "demo universe size")
		modules    = flag.Int("modules", 20, "demo co-regulation modules")
		nDatasets  = flag.Int("datasets", 8, "demo compendium size")
		seed       = flag.Int64("seed", 1, "demo generator seed")
		cacheMB    = flag.Int64("cache-mb", 64, "shared LRU cache budget in MiB")
		workers    = flag.Int("render-workers", runtime.GOMAXPROCS(0), "bounded render pool size")
		queue      = flag.Int("render-queue", 0, "render queue depth before load shedding (0 = 4x workers)")
		maxGenes   = flag.Int("max-genes", 200, "cap on requested search result length")
		maxTileDim = flag.Int("max-tile", 2048, "cap on requested tile width/height")
		searchPar  = flag.Int("search-parallelism", 0, "workers per SPELL scan (0 = GOMAXPROCS; bound it on colocated shard daemons)")
		clusterArr = flag.Bool("cluster-arrays", false, "also cluster experiment columns, enabling the atree= column-dendrogram strip")
		f32Slabs   = flag.Bool("float32-slabs", false, "store pyramid render slabs as float32 (half the memory; colors may differ by ±1/255)")
		prefetchW  = flag.Int("prefetch-workers", 2, "speculative tile-prefetch workers (0 disables prefetching)")
		prefetchQ  = flag.Int("prefetch-queue", 0, "prefetch queue depth (0 = 16x workers)")

		role         = flag.String("role", "single", `daemon role: "single" (whole compendium in-process), "shard" (serve partials for this daemon's slice), "coordinator" (scatter searches over -shards and merge)`)
		shardsFlag   = flag.String("shards", "", "comma-separated shard identities — the same list on every fleet member (shards and coordinator hash these strings for dataset ownership)")
		selfFlag     = flag.String("self", "", "this daemon's entry in -shards (required with -role=shard)")
		replication  = flag.Int("replication", 1, "ownership replication factor R: each dataset is held by its top-R rendezvous shards (same value on every fleet member)")
		fleetToken   = flag.String("fleet-token", "", "bearer token for fleet admin: the coordinator's POST /api/admin/fleet, and a shard's drain/handoff/fleet endpoints (empty disables them)")
		shardTimeout = flag.Duration("shard-timeout", 10*time.Second, "coordinator: per-shard attempt deadline")
		shardRetry   = flag.Bool("shard-retry", true, "coordinator: grant each ownership group one extra attempt after every replica failed")
		hedgeAfter   = flag.Duration("hedge-after", 0, "coordinator: duplicate a slow group request after this delay, onto the next untried replica (0 disables hedging)")
		breakerTh    = flag.Int("breaker-threshold", 0, "coordinator: consecutive replica failures that trip its circuit breaker open (0 = default 3, negative disables the breaker)")
		infoCooldown = flag.Duration("info-cooldown", 0, "coordinator: cooldown between failing compendium-info probe rounds (0 = default 15s, negative disables)")
		drain        = flag.Duration("drain-timeout", 10*time.Second, "graceful-shutdown window for in-flight requests on SIGINT/SIGTERM")
	)
	flag.Parse()
	// The drain hook feeds the same signal channel the OS does: when a
	// shard finishes handing off its warm partials it asks its own process
	// to exit through the ordinary graceful-shutdown path.
	sigCh := make(chan os.Signal, 2)
	srv, err := buildServer(buildConfig{
		files: *files, obo: *oboPath, assoc: *assocPath,
		demo: *demo || *files == "", precluster: *precluster,
		genes: *genes, modules: *modules,
		datasets: *nDatasets, seed: *seed,
		cacheMB: *cacheMB, workers: *workers, queue: *queue,
		maxGenes: *maxGenes, maxTileDim: *maxTileDim, searchPar: *searchPar,
		clusterArrays: *clusterArr, float32Slabs: *f32Slabs,
		prefetchWorkers: *prefetchW, prefetchQueue: *prefetchQ,
		role: *role, shards: splitList(*shardsFlag), self: *selfFlag,
		replication: *replication, fleetToken: *fleetToken,
		shardDeadline: *shardTimeout, shardRetry: *shardRetry, hedgeAfter: *hedgeAfter,
		breakerThreshold: *breakerTh, infoCooldown: *infoCooldown,
		onDrained: func() {
			select {
			case sigCh <- syscall.SIGTERM:
			default: // a real signal already queued; one exit is plenty
			}
		},
		log: func(format string, args ...any) { fmt.Printf(format+"\n", args...) },
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "forestviewd:", err)
		os.Exit(1)
	}
	defer srv.Close()
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "forestviewd:", err)
		os.Exit(1)
	}
	fmt.Printf("forestviewd (%s) listening on http://%s\n", *role, ln.Addr())
	// Conservative connection timeouts: a client trickling bytes must not
	// pin goroutines forever past all the admission control downstream.
	hs := &http.Server{
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	// SIGINT/SIGTERM drain instead of drop: in-flight work — a scatter
	// mid-merge, a tile mid-render — completes within -drain-timeout while
	// the listener stops accepting, so restarting a shard never turns
	// queries that already reached it into connection resets. The drain
	// admin endpoint exits through the same channel (see onDrained above).
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	if err := serveUntilSignal(hs, ln, sigCh, *drain,
		func(format string, args ...any) { fmt.Printf(format+"\n", args...) }); err != nil {
		fmt.Fprintln(os.Stderr, "forestviewd:", err)
		os.Exit(1)
	}
}

// serveUntilSignal serves on ln until a termination signal arrives, then
// shuts down gracefully: the listener closes immediately, in-flight
// requests get up to drain to complete, and only an incomplete drain is
// an error. Factored from main so tests can deliver simulated signals.
func serveUntilSignal(hs *http.Server, ln net.Listener, sig <-chan os.Signal, drain time.Duration, logf func(string, ...any)) error {
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	select {
	case err := <-serveErr:
		return err // the listener died on its own; nothing to drain
	case s := <-sig:
		logf("forestviewd: received %v, draining in-flight requests (up to %v)", s, drain)
		ctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if err := hs.Shutdown(ctx); err != nil {
			return fmt.Errorf("graceful shutdown incomplete after %v: %w", drain, err)
		}
		if err := <-serveErr; !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		logf("forestviewd: drained, bye")
		return nil
	}
}

// buildConfig collects everything buildServer needs, so tests can assemble
// a daemon without flags or sockets.
type buildConfig struct {
	files, obo, assoc        string
	demo                     bool
	precluster               bool
	genes, modules, datasets int
	seed                     int64
	cacheMB                  int64
	workers, queue           int
	maxGenes, maxTileDim     int
	searchPar                int
	clusterArrays            bool
	float32Slabs             bool
	prefetchWorkers          int
	prefetchQueue            int

	role          string // "", "single", "shard", "coordinator"
	shards        []string
	self          string
	replication   int
	fleetToken    string
	shardDeadline time.Duration
	shardRetry    bool
	hedgeAfter    time.Duration

	// breakerThreshold and infoCooldown tune the coordinator's adaptive
	// failure handling (zero keeps the package defaults).
	breakerThreshold int
	infoCooldown     time.Duration
	// onDrained runs once after a shard-role daemon finishes its warm
	// handoff (POST /api/shard/v1/admin/drain); main uses it to trigger
	// the graceful-shutdown path.
	onDrained func()

	log func(format string, args ...any)
}

// buildServer loads the compendium (or, for a coordinator, only the shard
// topology), prepares the engines the role needs and wires the HTTP
// server. This is the whole startup path of the daemon.
func buildServer(cfg buildConfig) (*server.Server, error) {
	if cfg.log == nil {
		cfg.log = func(string, ...any) {}
	}
	role := cfg.role
	if role == "" {
		role = "single"
	}
	switch role {
	case "single", "shard", "coordinator":
	default:
		return nil, fmt.Errorf("unknown -role %q (single, shard or coordinator)", role)
	}
	repl := cfg.replication
	if repl == 0 {
		repl = 1
	}
	if repl < 1 {
		return nil, fmt.Errorf("-replication %d < 1", repl)
	}
	if role != "single" && len(cfg.shards) > 0 && repl > len(cfg.shards) {
		return nil, fmt.Errorf("-replication %d exceeds the %d-shard fleet", repl, len(cfg.shards))
	}
	t0 := time.Now()

	if role == "coordinator" {
		// A coordinator holds no expression data and no ontology at all:
		// ownership is a pure function of the shard set, so it scatters and
		// merges — searches and enrichments alike — with nothing to load.
		if len(cfg.shards) == 0 {
			return nil, fmt.Errorf("-role=coordinator requires -shards")
		}
		if cfg.obo != "" {
			return nil, fmt.Errorf("-obo belongs on shard daemons, not the coordinator (it scatters /api/enrich to ontology-bearing shards)")
		}
		coord, err := shard.NewCoordinator(shard.Config{
			Shards:              cfg.shards,
			Replication:         repl,
			Deadline:            cfg.shardDeadline,
			Retry:               cfg.shardRetry,
			HedgeAfter:          cfg.hedgeAfter,
			BreakerThreshold:    cfg.breakerThreshold,
			InfoFailureCooldown: cfg.infoCooldown,
		})
		if err != nil {
			return nil, err
		}
		srv, err := server.New(server.Config{
			Scatter:       coord,
			FleetToken:    cfg.fleetToken,
			CacheBytes:    cfg.cacheMB << 20,
			RenderWorkers: cfg.workers,
			RenderQueue:   cfg.queue,
			MaxGenes:      cfg.maxGenes,
			MaxTileDim:    cfg.maxTileDim,
		})
		if err != nil {
			return nil, err
		}
		cfg.log("coordinator over %d shards (generation %016x), replication=%d retry=%t hedge=%v fleet-admin=%t",
			len(coord.Shards()), coord.Generation(), repl, cfg.shardRetry, cfg.hedgeAfter, cfg.fleetToken != "")
		return srv, nil
	}

	// shardIndexes maps engine dataset position -> global compendium index;
	// shardCatalog is the full dataset list every fleet member agrees on;
	// shardLoader fetches a dataset by global index so a membership reload
	// can grow this shard's holdings without a restart. All stay nil for
	// the single role.
	var shardIndexes []int
	var shardCatalog []string
	var shardLoader func(context.Context, int) (*microarray.Dataset, error)
	ownedOnly := func(names []string) (map[int]bool, error) {
		if role != "shard" {
			return nil, nil
		}
		if len(cfg.shards) == 0 || cfg.self == "" {
			return nil, fmt.Errorf("-role=shard requires -shards and -self")
		}
		selfListed := false
		for _, s := range cfg.shards {
			if s == cfg.self {
				selfListed = true
				break
			}
		}
		if !selfListed {
			return nil, fmt.Errorf("-self %q is not in -shards (assignment hashes the literal strings)", cfg.self)
		}
		// Top-repl ownership: this shard loads every dataset that ranks it
		// among the top-repl rendezvous owners, so any repl-1 other shards
		// can die without losing a dataset.
		owned := make(map[int]bool)
		for _, gi := range shard.OwnedIndexesR(names, cfg.shards, cfg.self, repl) {
			owned[gi] = true
		}
		if len(owned) == 0 {
			return nil, fmt.Errorf("shard %q owns none of the %d datasets; add datasets or shrink the shard set", cfg.self, len(names))
		}
		shardCatalog = names
		return owned, nil
	}

	var (
		datasets []*microarray.Dataset
		enricher *golem.Enricher
	)
	if cfg.demo {
		u := synth.NewUniverse(cfg.genes, cfg.modules, cfg.seed)
		dss, _ := u.GenerateCompendium(synth.CompendiumSpec{
			NumDatasets: cfg.datasets, MinExperiments: 10, MaxExperiments: 30,
			ActiveFraction: 0.4, Noise: 0.25, MissingRate: 0.02, Seed: cfg.seed + 50,
		})
		names := make([]string, len(dss))
		for i, ds := range dss {
			names[i] = ds.Name
		}
		owned, err := ownedOnly(names)
		if err != nil {
			return nil, err
		}
		for gi, ds := range dss {
			if owned != nil && !owned[gi] {
				continue
			}
			datasets = append(datasets, ds)
			if owned != nil {
				shardIndexes = append(shardIndexes, gi)
			}
		}
		if owned != nil {
			// The demo compendium is already in memory whole; a reload just
			// picks the dataset out of it.
			shardLoader = func(_ context.Context, gi int) (*microarray.Dataset, error) {
				if gi < 0 || gi >= len(dss) {
					return nil, fmt.Errorf("dataset index %d outside the %d-dataset demo compendium", gi, len(dss))
				}
				return dss[gi], nil
			}
		}
		var leafNames []string
		for _, m := range u.Modules {
			leafNames = append(leafNames, m.Name)
		}
		onto, leafOf, err := ontology.Synthetic(ontology.SyntheticSpec{LeafNames: leafNames, Seed: cfg.seed + 3})
		if err != nil {
			return nil, fmt.Errorf("synthetic ontology: %w", err)
		}
		ann := ontology.AnnotateFromModules(u.Annotations(), leafOf)
		enricher, err = golem.NewEnricher(onto, ann, u.GeneIDs())
		if err != nil {
			return nil, fmt.Errorf("enricher: %w", err)
		}
		cfg.log("demo compendium: %d of %d datasets over %d genes, %d GO terms",
			len(datasets), len(dss), cfg.genes, enricher.NumTerms())
	} else {
		paths := splitList(cfg.files)
		if len(paths) == 0 {
			return nil, fmt.Errorf("no datasets given (use -files or -demo)")
		}
		// Dataset identity is the trimmed file name, known before parsing:
		// a shard only pays to parse the slice it owns.
		names := make([]string, len(paths))
		for i, p := range paths {
			names[i] = trimPCLExt(p)
		}
		owned, err := ownedOnly(names)
		if err != nil {
			return nil, err
		}
		readPCL := func(gi int) (*microarray.Dataset, error) {
			f, err := os.Open(paths[gi])
			if err != nil {
				return nil, err
			}
			defer f.Close()
			ds, err := microarray.ReadPCL(f, names[gi])
			if err != nil {
				return nil, fmt.Errorf("%s: %w", paths[gi], err)
			}
			return ds, nil
		}
		for gi := range paths {
			if owned != nil && !owned[gi] {
				continue
			}
			ds, err := readPCL(gi)
			if err != nil {
				return nil, err
			}
			datasets = append(datasets, ds)
			if owned != nil {
				shardIndexes = append(shardIndexes, gi)
			}
			cfg.log("loaded %q: %d genes x %d experiments", ds.Name, ds.NumGenes(), ds.NumExperiments())
		}
		if owned != nil {
			// A reload re-parses the file for a dataset this shard newly owns.
			shardLoader = func(_ context.Context, gi int) (*microarray.Dataset, error) {
				if gi < 0 || gi >= len(paths) {
					return nil, fmt.Errorf("dataset index %d outside the %d-file compendium", gi, len(paths))
				}
				return readPCL(gi)
			}
		}
	}

	engine, err := spell.NewEngine(datasets)
	if err != nil {
		return nil, err
	}

	if enricher == nil && cfg.obo != "" {
		if cfg.assoc == "" {
			return nil, fmt.Errorf("-obo requires -assoc")
		}
		f, err := os.Open(cfg.obo)
		if err != nil {
			return nil, err
		}
		onto, err := ontology.ReadOBO(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", cfg.obo, err)
		}
		af, err := os.Open(cfg.assoc)
		if err != nil {
			return nil, err
		}
		ann, err := ontology.ReadAssociations(af)
		af.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", cfg.assoc, err)
		}
		enricher, err = golem.NewEnricher(onto, ann, engine.GeneIDs())
		if err != nil {
			return nil, fmt.Errorf("enricher: %w", err)
		}
		cfg.log("ontology: %d testable GO terms over %d background genes",
			enricher.NumTerms(), enricher.BackgroundSize())
	}

	// Datasets go in raw: the server's tree cache clusters each one exactly
	// once on its first /api/heatmap touch (concurrent tiles coalesce onto
	// one build), keeping startup off the clustering critical path. The
	// -precluster flag restores pay-at-boot warming.
	scfg := server.Config{
		Engine:            engine,
		ShardIndexes:      shardIndexes,
		ShardDatasetIDs:   shardCatalog,
		Enricher:          enricher,
		RawDatasets:       datasets,
		TreeMetric:        cluster.PearsonDist,
		TreeLinkage:       cluster.AverageLinkage,
		CacheBytes:        cfg.cacheMB << 20,
		RenderWorkers:     cfg.workers,
		RenderQueue:       cfg.queue,
		MaxGenes:          cfg.maxGenes,
		MaxTileDim:        cfg.maxTileDim,
		SearchParallelism: cfg.searchPar,
		ClusterArrays:     cfg.clusterArrays,
		Float32Slabs:      cfg.float32Slabs,
		PrefetchWorkers:   cfg.prefetchWorkers,
		PrefetchQueue:     cfg.prefetchQueue,
	}
	if role == "shard" {
		// Fleet plumbing: the shard knows its own identity and the full
		// membership view, can load datasets it newly owns after a reload,
		// and exits through onDrained once a drain's warm handoff lands.
		scfg.ShardSelf = cfg.self
		scfg.ShardFleet = cfg.shards
		scfg.ShardReplication = repl
		scfg.ShardRawDatasets = datasets
		scfg.ShardLoader = shardLoader
		scfg.OnDrained = cfg.onDrained
		scfg.FleetToken = cfg.fleetToken
	}
	srv, err := server.New(scfg)
	if err != nil {
		return nil, err
	}
	if role == "shard" {
		cfg.log("shard %q serving %d/%d datasets (replication=%d) at %s, drain-admin=%t",
			cfg.self, len(datasets), len(shardCatalog), repl, shard.SearchPath, cfg.fleetToken != "")
	}
	if cfg.precluster {
		if err := srv.WarmTrees(context.Background()); err != nil {
			srv.Close()
			return nil, fmt.Errorf("preclustering: %w", err)
		}
		cfg.log("preclustered %d datasets in %v", len(datasets), time.Since(t0).Round(time.Millisecond))
	} else {
		cfg.log("%d datasets registered for lazy clustering (use -precluster to warm at boot)", len(datasets))
	}
	return srv, nil
}

// splitList splits a comma-separated flag, trimming blanks.
func splitList(v string) []string {
	var out []string
	for _, s := range strings.Split(v, ",") {
		if s = strings.TrimSpace(s); s != "" {
			out = append(out, s)
		}
	}
	return out
}

func trimPCLExt(p string) string {
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		p = p[i+1:]
	}
	p = strings.TrimSuffix(p, ".pcl")
	return strings.TrimSuffix(p, ".PCL")
}
