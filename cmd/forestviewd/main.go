// Command forestviewd is the unified ForestView query daemon: it loads a
// compendium once, prepares every paper subsystem — the SPELL search
// engine, the GOLEM enrichment context and clustered heatmap panes — and
// serves them concurrently over HTTP behind a shared cache:
//
//	/            SPELL HTML search page (internal/spellweb)
//	/api/search  SPELL ranked datasets + genes (JSON)
//	/api/enrich  GOLEM GO-term enrichment of a gene list (JSON)
//	/api/heatmap clustered expression heatmap tiles (PNG)
//	/api/stats   per-endpoint latency / cache hit-rate counters (JSON)
//	/healthz     liveness probe
//
// Usage:
//
//	forestviewd -demo -addr :8080
//	forestviewd -files a.pcl,b.pcl,c.pcl -obo go.obo -assoc assoc.tsv
//	curl 'localhost:8080/api/search?q=YAL001C,YBR072W&top=10'
//	curl 'localhost:8080/api/enrich?genes=YAL001C,YAL002W&maxp=0.05'
//	curl 'localhost:8080/api/heatmap?dataset=0&w=512&h=512' -o tile.png
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"strings"
	"time"

	"forestview/internal/cluster"
	"forestview/internal/golem"
	"forestview/internal/microarray"
	"forestview/internal/ontology"
	"forestview/internal/server"
	"forestview/internal/spell"
	"forestview/internal/synth"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8080", "listen address")
		files      = flag.String("files", "", "comma-separated PCL files forming the compendium")
		oboPath    = flag.String("obo", "", "OBO ontology file enabling /api/enrich on file compendia")
		assocPath  = flag.String("assoc", "", "gene association file (gene<TAB>term), required with -obo")
		demo       = flag.Bool("demo", false, "serve a synthetic demo compendium (default when -files is empty)")
		precluster = flag.Bool("precluster", false, "cluster every dataset at startup instead of lazily on first heatmap request")
		genes      = flag.Int("genes", 1500, "demo universe size")
		modules    = flag.Int("modules", 20, "demo co-regulation modules")
		nDatasets  = flag.Int("datasets", 8, "demo compendium size")
		seed       = flag.Int64("seed", 1, "demo generator seed")
		cacheMB    = flag.Int64("cache-mb", 64, "shared LRU cache budget in MiB")
		workers    = flag.Int("render-workers", runtime.GOMAXPROCS(0), "bounded render pool size")
		queue      = flag.Int("render-queue", 0, "render queue depth before load shedding (0 = 4x workers)")
		maxGenes   = flag.Int("max-genes", 200, "cap on requested search result length")
		maxTileDim = flag.Int("max-tile", 2048, "cap on requested tile width/height")
	)
	flag.Parse()
	srv, err := buildServer(buildConfig{
		files: *files, obo: *oboPath, assoc: *assocPath,
		demo: *demo || *files == "", precluster: *precluster,
		genes: *genes, modules: *modules,
		datasets: *nDatasets, seed: *seed,
		cacheMB: *cacheMB, workers: *workers, queue: *queue,
		maxGenes: *maxGenes, maxTileDim: *maxTileDim,
		log: func(format string, args ...any) { fmt.Printf(format+"\n", args...) },
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "forestviewd:", err)
		os.Exit(1)
	}
	defer srv.Close()
	fmt.Printf("forestviewd listening on http://%s\n", *addr)
	// Conservative connection timeouts: a client trickling bytes must not
	// pin goroutines forever past all the admission control downstream.
	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	if err := hs.ListenAndServe(); err != nil {
		fmt.Fprintln(os.Stderr, "forestviewd:", err)
		os.Exit(1)
	}
}

// buildConfig collects everything buildServer needs, so tests can assemble
// a daemon without flags or sockets.
type buildConfig struct {
	files, obo, assoc        string
	demo                     bool
	precluster               bool
	genes, modules, datasets int
	seed                     int64
	cacheMB                  int64
	workers, queue           int
	maxGenes, maxTileDim     int
	log                      func(format string, args ...any)
}

// buildServer loads the compendium, prepares all three engines and wires
// the HTTP server. This is the whole startup path of the daemon.
func buildServer(cfg buildConfig) (*server.Server, error) {
	if cfg.log == nil {
		cfg.log = func(string, ...any) {}
	}
	t0 := time.Now()

	var (
		datasets []*microarray.Dataset
		enricher *golem.Enricher
	)
	if cfg.demo {
		u := synth.NewUniverse(cfg.genes, cfg.modules, cfg.seed)
		dss, _ := u.GenerateCompendium(synth.CompendiumSpec{
			NumDatasets: cfg.datasets, MinExperiments: 10, MaxExperiments: 30,
			ActiveFraction: 0.4, Noise: 0.25, MissingRate: 0.02, Seed: cfg.seed + 50,
		})
		datasets = dss
		var names []string
		for _, m := range u.Modules {
			names = append(names, m.Name)
		}
		onto, leafOf, err := ontology.Synthetic(ontology.SyntheticSpec{LeafNames: names, Seed: cfg.seed + 3})
		if err != nil {
			return nil, fmt.Errorf("synthetic ontology: %w", err)
		}
		ann := ontology.AnnotateFromModules(u.Annotations(), leafOf)
		enricher, err = golem.NewEnricher(onto, ann, u.GeneIDs())
		if err != nil {
			return nil, fmt.Errorf("enricher: %w", err)
		}
		cfg.log("demo compendium: %d datasets over %d genes, %d GO terms",
			len(datasets), cfg.genes, enricher.NumTerms())
	} else {
		for _, path := range strings.Split(cfg.files, ",") {
			path = strings.TrimSpace(path)
			if path == "" {
				continue
			}
			f, err := os.Open(path)
			if err != nil {
				return nil, err
			}
			ds, err := microarray.ReadPCL(f, trimPCLExt(path))
			f.Close()
			if err != nil {
				return nil, fmt.Errorf("%s: %w", path, err)
			}
			datasets = append(datasets, ds)
			cfg.log("loaded %q: %d genes x %d experiments", ds.Name, ds.NumGenes(), ds.NumExperiments())
		}
		if len(datasets) == 0 {
			return nil, fmt.Errorf("no datasets given (use -files or -demo)")
		}
	}

	engine, err := spell.NewEngine(datasets)
	if err != nil {
		return nil, err
	}

	if enricher == nil && cfg.obo != "" {
		if cfg.assoc == "" {
			return nil, fmt.Errorf("-obo requires -assoc")
		}
		f, err := os.Open(cfg.obo)
		if err != nil {
			return nil, err
		}
		onto, err := ontology.ReadOBO(f)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", cfg.obo, err)
		}
		af, err := os.Open(cfg.assoc)
		if err != nil {
			return nil, err
		}
		ann, err := ontology.ReadAssociations(af)
		af.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", cfg.assoc, err)
		}
		enricher, err = golem.NewEnricher(onto, ann, engine.GeneIDs())
		if err != nil {
			return nil, fmt.Errorf("enricher: %w", err)
		}
		cfg.log("ontology: %d testable GO terms over %d background genes",
			enricher.NumTerms(), enricher.BackgroundSize())
	}

	// Datasets go in raw: the server's tree cache clusters each one exactly
	// once on its first /api/heatmap touch (concurrent tiles coalesce onto
	// one build), keeping startup off the clustering critical path. The
	// -precluster flag restores pay-at-boot warming.
	srv, err := server.New(server.Config{
		Engine:        engine,
		Enricher:      enricher,
		RawDatasets:   datasets,
		TreeMetric:    cluster.PearsonDist,
		TreeLinkage:   cluster.AverageLinkage,
		CacheBytes:    cfg.cacheMB << 20,
		RenderWorkers: cfg.workers,
		RenderQueue:   cfg.queue,
		MaxGenes:      cfg.maxGenes,
		MaxTileDim:    cfg.maxTileDim,
	})
	if err != nil {
		return nil, err
	}
	if cfg.precluster {
		if err := srv.WarmTrees(context.Background()); err != nil {
			srv.Close()
			return nil, fmt.Errorf("preclustering: %w", err)
		}
		cfg.log("preclustered %d datasets in %v", len(datasets), time.Since(t0).Round(time.Millisecond))
	} else {
		cfg.log("%d datasets registered for lazy clustering (use -precluster to warm at boot)", len(datasets))
	}
	return srv, nil
}

func trimPCLExt(p string) string {
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		p = p[i+1:]
	}
	p = strings.TrimSuffix(p, ".pcl")
	return strings.TrimSuffix(p, ".PCL")
}
