package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"forestview/internal/microarray"
	"forestview/internal/server"
	"forestview/internal/synth"
)

func demoServer(t *testing.T) *server.Server {
	t.Helper()
	srv, err := buildServer(buildConfig{
		demo: true, genes: 200, modules: 8, datasets: 3, seed: 7,
		cacheMB: 8, workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv
}

func get(t *testing.T, srv *server.Server, url string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
	return rec
}

// TestDemoDaemonServesAllSubsystems is the end-to-end smoke test of the
// acceptance criterion: one daemon, one engine, all three paper subsystems
// answering on their endpoints.
func TestDemoDaemonServesAllSubsystems(t *testing.T) {
	srv := demoServer(t)

	if rec := get(t, srv, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("healthz = %d", rec.Code)
	}

	// A module's genes make a meaningful query for both search and
	// enrichment; regenerate the same universe to learn its gene IDs.
	u := synth.NewUniverse(200, 8, 7)
	genes := u.ModuleGeneIDs(3)
	if len(genes) > 5 {
		genes = genes[:5]
	}
	q := strings.Join(genes, ",")

	rec := get(t, srv, "/api/search?q="+q+"&top=15")
	if rec.Code != http.StatusOK {
		t.Fatalf("search = %d: %s", rec.Code, rec.Body.String())
	}
	var sr struct {
		Datasets []json.RawMessage `json:"Datasets"`
		Genes    []json.RawMessage `json:"Genes"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Datasets) != 3 || len(sr.Genes) == 0 {
		t.Fatalf("search shape: %d datasets, %d genes", len(sr.Datasets), len(sr.Genes))
	}

	rec = get(t, srv, "/api/enrich?genes="+q)
	if rec.Code != http.StatusOK {
		t.Fatalf("enrich = %d: %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "results") {
		t.Fatal("enrich body missing results")
	}

	rec = get(t, srv, "/api/heatmap?dataset=0&w=64&h=64")
	if rec.Code != http.StatusOK {
		t.Fatalf("heatmap = %d: %s", rec.Code, rec.Body.String())
	}
	if !bytes.HasPrefix(rec.Body.Bytes(), []byte{0x89, 'P', 'N', 'G'}) {
		t.Fatal("heatmap is not a PNG")
	}

	rec = get(t, srv, "/api/stats")
	var snap server.StatsSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Compendium.Datasets != 3 || snap.Compendium.GOTerms == 0 {
		t.Fatalf("stats compendium: %+v", snap.Compendium)
	}
	if snap.Endpoints["search"].Requests != 1 || snap.Endpoints["heatmap"].Requests != 1 {
		t.Fatalf("stats endpoints: %+v", snap.Endpoints)
	}

	// The SPELL HTML page is mounted on the same mux.
	rec = get(t, srv, "/")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "SPELL") {
		t.Fatalf("HTML index = %d", rec.Code)
	}
}

// TestFileCompendium exercises the PCL loading path without an ontology:
// search and heatmap work, enrichment honestly reports 503.
func TestFileCompendium(t *testing.T) {
	dir := t.TempDir()
	u := synth.NewUniverse(120, 6, 9)
	dss, _ := u.GenerateCompendium(synth.CompendiumSpec{
		NumDatasets: 2, MinExperiments: 8, MaxExperiments: 10, Seed: 11,
	})
	var paths []string
	for i, ds := range dss {
		p := filepath.Join(dir, "ds"+string(rune('a'+i))+".pcl")
		f, err := os.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := microarray.WritePCL(f, ds); err != nil {
			t.Fatal(err)
		}
		f.Close()
		paths = append(paths, p)
	}

	srv, err := buildServer(buildConfig{files: strings.Join(paths, ","), cacheMB: 4, workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	genes := u.ModuleGeneIDs(2)[:2]
	rec := get(t, srv, "/api/search?q="+strings.Join(genes, ","))
	if rec.Code != http.StatusOK {
		t.Fatalf("search = %d: %s", rec.Code, rec.Body.String())
	}
	if rec := get(t, srv, "/api/heatmap?dataset=dsa"); rec.Code != http.StatusOK {
		t.Fatalf("heatmap by file name = %d: %s", rec.Code, rec.Body.String())
	}
	if rec := get(t, srv, "/api/enrich?genes="+genes[0]); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("enrich without ontology = %d", rec.Code)
	}
}

func TestBuildServerErrors(t *testing.T) {
	if _, err := buildServer(buildConfig{files: "/nonexistent.pcl"}); err == nil {
		t.Fatal("missing file accepted")
	}
	if _, err := buildServer(buildConfig{files: " , "}); err == nil {
		t.Fatal("empty file list accepted")
	}
	// Demo mode ignores -obo (its enricher is synthetic), so this builds.
	srv, err := buildServer(buildConfig{demo: true, genes: 50, modules: 4, datasets: 1, obo: "x"})
	if err != nil {
		t.Fatalf("demo with -obo: %v", err)
	}
	srv.Close()
}

func TestTrimPCLExt(t *testing.T) {
	cases := map[string]string{
		"/data/stress.pcl": "stress",
		"knockouts.PCL":    "knockouts",
		"plain":            "plain",
	}
	for in, want := range cases {
		if got := trimPCLExt(in); got != want {
			t.Errorf("trimPCLExt(%q) = %q, want %q", in, got, want)
		}
	}
}
