package main

import (
	"bytes"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"forestview/internal/microarray"
	"forestview/internal/server"
	"forestview/internal/shard"
	"forestview/internal/synth"
)

func demoServer(t *testing.T) *server.Server {
	t.Helper()
	srv, err := buildServer(buildConfig{
		demo: true, genes: 200, modules: 8, datasets: 3, seed: 7,
		cacheMB: 8, workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv
}

func get(t *testing.T, srv *server.Server, url string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
	return rec
}

// TestDemoDaemonServesAllSubsystems is the end-to-end smoke test of the
// acceptance criterion: one daemon, one engine, all three paper subsystems
// answering on their endpoints.
func TestDemoDaemonServesAllSubsystems(t *testing.T) {
	srv := demoServer(t)

	if rec := get(t, srv, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("healthz = %d", rec.Code)
	}

	// A module's genes make a meaningful query for both search and
	// enrichment; regenerate the same universe to learn its gene IDs.
	u := synth.NewUniverse(200, 8, 7)
	genes := u.ModuleGeneIDs(3)
	if len(genes) > 5 {
		genes = genes[:5]
	}
	q := strings.Join(genes, ",")

	rec := get(t, srv, "/api/search?q="+q+"&top=15")
	if rec.Code != http.StatusOK {
		t.Fatalf("search = %d: %s", rec.Code, rec.Body.String())
	}
	var sr struct {
		Datasets []json.RawMessage `json:"Datasets"`
		Genes    []json.RawMessage `json:"Genes"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Datasets) != 3 || len(sr.Genes) == 0 {
		t.Fatalf("search shape: %d datasets, %d genes", len(sr.Datasets), len(sr.Genes))
	}

	rec = get(t, srv, "/api/enrich?genes="+q)
	if rec.Code != http.StatusOK {
		t.Fatalf("enrich = %d: %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "results") {
		t.Fatal("enrich body missing results")
	}

	rec = get(t, srv, "/api/heatmap?dataset=0&w=64&h=64")
	if rec.Code != http.StatusOK {
		t.Fatalf("heatmap = %d: %s", rec.Code, rec.Body.String())
	}
	if !bytes.HasPrefix(rec.Body.Bytes(), []byte{0x89, 'P', 'N', 'G'}) {
		t.Fatal("heatmap is not a PNG")
	}

	rec = get(t, srv, "/api/stats")
	var snap server.StatsSnapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Compendium.Datasets != 3 || snap.Compendium.GOTerms == 0 {
		t.Fatalf("stats compendium: %+v", snap.Compendium)
	}
	if snap.Endpoints["search"].Requests != 1 || snap.Endpoints["heatmap"].Requests != 1 {
		t.Fatalf("stats endpoints: %+v", snap.Endpoints)
	}

	// The SPELL HTML page is mounted on the same mux.
	rec = get(t, srv, "/")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "SPELL") {
		t.Fatalf("HTML index = %d", rec.Code)
	}
}

// TestFileCompendium exercises the PCL loading path without an ontology:
// search and heatmap work, enrichment honestly reports 503.
func TestFileCompendium(t *testing.T) {
	dir := t.TempDir()
	u := synth.NewUniverse(120, 6, 9)
	dss, _ := u.GenerateCompendium(synth.CompendiumSpec{
		NumDatasets: 2, MinExperiments: 8, MaxExperiments: 10, Seed: 11,
	})
	var paths []string
	for i, ds := range dss {
		p := filepath.Join(dir, "ds"+string(rune('a'+i))+".pcl")
		f, err := os.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := microarray.WritePCL(f, ds); err != nil {
			t.Fatal(err)
		}
		f.Close()
		paths = append(paths, p)
	}

	srv, err := buildServer(buildConfig{files: strings.Join(paths, ","), cacheMB: 4, workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	genes := u.ModuleGeneIDs(2)[:2]
	rec := get(t, srv, "/api/search?q="+strings.Join(genes, ","))
	if rec.Code != http.StatusOK {
		t.Fatalf("search = %d: %s", rec.Code, rec.Body.String())
	}
	if rec := get(t, srv, "/api/heatmap?dataset=dsa"); rec.Code != http.StatusOK {
		t.Fatalf("heatmap by file name = %d: %s", rec.Code, rec.Body.String())
	}
	if rec := get(t, srv, "/api/enrich?genes="+genes[0]); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("enrich without ontology = %d", rec.Code)
	}
}

func TestBuildServerErrors(t *testing.T) {
	if _, err := buildServer(buildConfig{files: "/nonexistent.pcl"}); err == nil {
		t.Fatal("missing file accepted")
	}
	if _, err := buildServer(buildConfig{files: " , "}); err == nil {
		t.Fatal("empty file list accepted")
	}
	// Demo mode ignores -obo (its enricher is synthetic), so this builds.
	srv, err := buildServer(buildConfig{demo: true, genes: 50, modules: 4, datasets: 1, obo: "x"})
	if err != nil {
		t.Fatalf("demo with -obo: %v", err)
	}
	srv.Close()
}

func TestTrimPCLExt(t *testing.T) {
	cases := map[string]string{
		"/data/stress.pcl": "stress",
		"knockouts.PCL":    "knockouts",
		"plain":            "plain",
	}
	for in, want := range cases {
		if got := trimPCLExt(in); got != want {
			t.Errorf("trimPCLExt(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestGracefulShutdownDrainsInFlight is the signal-handling regression
// test: a simulated SIGINT while a request is in flight must stop the
// listener, let the request complete with its full body, and only then
// return from serve — no connection reset for work already accepted.
func TestGracefulShutdownDrainsInFlight(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		close(started)
		<-release
		fmt.Fprint(w, "drained-ok")
	})
	hs := &http.Server{Handler: mux}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sig := make(chan os.Signal, 1)
	served := make(chan error, 1)
	go func() {
		served <- serveUntilSignal(hs, ln, sig, 5*time.Second, func(string, ...any) {})
	}()

	type result struct {
		body string
		err  error
	}
	resCh := make(chan result, 1)
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/slow")
		if err != nil {
			resCh <- result{err: err}
			return
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		resCh <- result{body: string(b), err: err}
	}()
	<-started

	sig <- os.Interrupt // simulated signal, no process-level delivery
	// The listener must refuse new work promptly while the in-flight
	// request is still held open.
	deadline := time.Now().Add(2 * time.Second)
	for {
		conn, err := net.DialTimeout("tcp", ln.Addr().String(), 100*time.Millisecond)
		if err != nil {
			break
		}
		conn.Close()
		if time.Now().After(deadline) {
			t.Fatal("listener still accepting after shutdown began")
		}
		time.Sleep(10 * time.Millisecond)
	}
	select {
	case err := <-served:
		t.Fatalf("serve returned before the in-flight request drained: %v", err)
	default:
	}

	close(release)
	if res := <-resCh; res.err != nil || res.body != "drained-ok" {
		t.Fatalf("in-flight request: %q, %v", res.body, res.err)
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("graceful shutdown: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not return after drain")
	}
}

// TestGracefulShutdownDrainTimeout: a handler that outlives the drain
// window surfaces as an explicit error instead of hanging forever.
func TestGracefulShutdownDrainTimeout(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	started := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/stuck", func(w http.ResponseWriter, r *http.Request) {
		close(started)
		<-release
	})
	hs := &http.Server{Handler: mux}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sig := make(chan os.Signal, 1)
	served := make(chan error, 1)
	go func() {
		served <- serveUntilSignal(hs, ln, sig, 50*time.Millisecond, func(string, ...any) {})
	}()
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/stuck")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-started
	sig <- os.Interrupt
	select {
	case err := <-served:
		if err == nil || !strings.Contains(err.Error(), "graceful shutdown incomplete") {
			t.Fatalf("err = %v, want drain-timeout error", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not give up after the drain window")
	}
}

// startDaemonFleet boots n -role=shard builds of the same demo compendium
// behind pre-bound loopback listeners, so the literal "127.0.0.1:port"
// strings serve as both the rendezvous identities and the dial addresses —
// exactly what a real deployment passes in -shards on every fleet member.
// Because the ports (and hence the rendezvous placement) are random, an
// unlucky draw can leave a shard with no datasets, which buildServer
// rejects by design; such draws are retried with fresh ports. Returns the
// identity list and the running HTTP servers (index-aligned). A non-empty
// token arms the drain/handoff admin endpoints; drained (when non-nil)
// receives a shard's identity once its warm handoff completes.
func startDaemonFleet(t *testing.T, n, repl, datasets int, token string, drained chan string) ([]string, []*httptest.Server) {
	t.Helper()
attempt:
	for try := 0; try < 25; try++ {
		identities := make([]string, n)
		listeners := make([]net.Listener, n)
		for i := range identities {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			listeners[i] = ln
			identities[i] = ln.Addr().String()
		}
		servers := make([]*httptest.Server, 0, n)
		abort := func() {
			for _, hs := range servers {
				hs.Close()
			}
			for _, ln := range listeners {
				ln.Close() // double close of consumed listeners is harmless
			}
		}
		for i, self := range identities {
			self := self
			cfg := buildConfig{
				demo: true, genes: 200, modules: 8, datasets: datasets, seed: 7,
				cacheMB: 4, workers: 1,
				role: "shard", shards: identities, self: self, replication: repl,
				fleetToken: token,
			}
			if drained != nil {
				cfg.onDrained = func() { drained <- self }
			}
			srv, err := buildServer(cfg)
			if err != nil {
				if strings.Contains(err.Error(), "owns none") {
					abort()
					continue attempt
				}
				t.Fatalf("shard %s: %v", self, err)
			}
			t.Cleanup(srv.Close)
			hs := httptest.NewUnstartedServer(srv)
			hs.Listener.Close()
			hs.Listener = listeners[i]
			hs.Start()
			servers = append(servers, hs)
		}
		for _, hs := range servers {
			t.Cleanup(hs.Close)
		}
		return identities, servers
	}
	t.Fatalf("no port draw in 25 tries gave all %d shards work over %d datasets", n, datasets)
	return nil, nil
}

type rankedSearch struct {
	Genes []struct {
		ID    string
		Score float64
	}
	Degraded bool `json:"degraded"`
}

// searchParity runs the same query through the coordinator and the
// single-process daemon and requires identical gene rankings and a
// non-degraded merge.
func searchParity(t *testing.T, coord, single *server.Server, q string) {
	t.Helper()
	recC := get(t, coord, "/api/search?q="+q+"&top=25")
	recS := get(t, single, "/api/search?q="+q+"&top=25")
	if recC.Code != http.StatusOK || recS.Code != http.StatusOK {
		t.Fatalf("coordinator = %d (%s), single = %d", recC.Code, recC.Body.String(), recS.Code)
	}
	if h := recC.Header().Get("X-Forestview-Degraded"); h != "false" {
		t.Fatalf("degraded header = %q", h)
	}
	var gotC, gotS rankedSearch
	if err := json.Unmarshal(recC.Body.Bytes(), &gotC); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(recS.Body.Bytes(), &gotS); err != nil {
		t.Fatal(err)
	}
	if len(gotC.Genes) == 0 || len(gotC.Genes) != len(gotS.Genes) {
		t.Fatalf("gene counts: %d vs %d", len(gotC.Genes), len(gotS.Genes))
	}
	for i := range gotS.Genes {
		if gotC.Genes[i].ID != gotS.Genes[i].ID {
			t.Fatalf("rank %d: %s vs %s", i, gotC.Genes[i].ID, gotS.Genes[i].ID)
		}
	}
}

// enrichParity runs the same selection through the coordinator's scatter
// enrichment and the single-process daemon and requires identical term
// rankings with a non-degraded merge — demo shards all carry the synthetic
// ontology, so the coordinator must reconstruct GOLEM's answer exactly.
func enrichParity(t *testing.T, coord, single *server.Server, q string) {
	t.Helper()
	recC := get(t, coord, "/api/enrich?genes="+q)
	recS := get(t, single, "/api/enrich?genes="+q)
	if recC.Code != http.StatusOK || recS.Code != http.StatusOK {
		t.Fatalf("coordinator = %d (%s), single = %d", recC.Code, recC.Body.String(), recS.Code)
	}
	if h := recC.Header().Get("X-Forestview-Degraded"); h != "false" {
		t.Fatalf("degraded header = %q", h)
	}
	type enrichBody struct {
		Results []struct {
			TermID   string
			Selected int
			PValue   float64
		} `json:"results"`
		Degraded bool `json:"degraded"`
	}
	var gotC, gotS enrichBody
	if err := json.Unmarshal(recC.Body.Bytes(), &gotC); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(recS.Body.Bytes(), &gotS); err != nil {
		t.Fatal(err)
	}
	if gotC.Degraded {
		t.Fatal("coordinator enrich degraded")
	}
	if len(gotC.Results) == 0 || len(gotC.Results) != len(gotS.Results) {
		t.Fatalf("result counts: %d vs %d", len(gotC.Results), len(gotS.Results))
	}
	for i := range gotS.Results {
		c, s := gotC.Results[i], gotS.Results[i]
		if c.TermID != s.TermID || c.Selected != s.Selected || c.PValue != s.PValue {
			t.Fatalf("rank %d: %+v vs %+v", i, c, s)
		}
	}
}

// TestShardCoordinatorTopologyE2E boots the daemon's real roles — two
// -role=shard builds over rendezvous-assigned slices of the same demo
// compendium and a -role=coordinator build over the same identity list —
// and checks /api/search through the coordinator against the
// single-process daemon, plus the scatter bookkeeping the roles expose.
func TestShardCoordinatorTopologyE2E(t *testing.T) {
	identities, _ := startDaemonFleet(t, 2, 1, 4, "", nil)
	coord, err := buildServer(buildConfig{
		role: "coordinator", shards: identities,
		cacheMB: 4, workers: 1, shardDeadline: 5 * time.Second, shardRetry: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	single, err := buildServer(buildConfig{
		demo: true, genes: 200, modules: 8, datasets: 4, seed: 7,
		cacheMB: 4, workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(single.Close)

	u := synth.NewUniverse(200, 8, 7)
	q := strings.Join(u.ModuleGeneIDs(3)[:4], ",")
	searchParity(t, coord, single, q)
	enrichParity(t, coord, single, strings.Join(u.ModuleGeneIDs(3), ","))

	var snap server.StatsSnapshot
	if err := json.Unmarshal(get(t, coord, "/api/stats").Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Scatter == nil || snap.Scatter.ShardsTotal != 2 {
		t.Fatalf("scatter stats: %+v", snap.Scatter)
	}
	if snap.Compendium.Datasets != 4 {
		t.Fatalf("coordinator compendium: %+v", snap.Compendium)
	}
}

// TestShardCoordinatorReplicatedE2E is the daemon-level replication proof:
// three -replication=2 shards, one killed outright, and the coordinator
// still answers every query bit-identically to the single-process build
// with no degraded merges. Also exercises the runtime fleet-admin endpoint
// end to end: removing the dead member keeps the fleet healthy.
func TestShardCoordinatorReplicatedE2E(t *testing.T) {
	identities, servers := startDaemonFleet(t, 3, 2, 6, "", nil)
	coord, err := buildServer(buildConfig{
		role: "coordinator", shards: identities, replication: 2,
		fleetToken: "sesame",
		cacheMB:    4, workers: 1, shardDeadline: 5 * time.Second, shardRetry: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	single, err := buildServer(buildConfig{
		demo: true, genes: 200, modules: 8, datasets: 6, seed: 7,
		cacheMB: 4, workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(single.Close)

	u := synth.NewUniverse(200, 8, 7)
	q := strings.Join(u.ModuleGeneIDs(3)[:4], ",")
	searchParity(t, coord, single, q)

	// Kill one replica. Every dataset still has a live owner, so merges
	// must stay complete (queries vary to dodge the coordinator cache).
	servers[1].Close()
	for _, m := range []int{1, 2, 4, 5} {
		searchParity(t, coord, single, strings.Join(u.ModuleGeneIDs(m)[:3], ","))
	}
	// Enrichment rides the same failover: any surviving replica of a
	// slice's owner group can tally it, so the merge stays exact.
	enrichParity(t, coord, single, strings.Join(u.ModuleGeneIDs(4), ","))

	var snap server.StatsSnapshot
	if err := json.Unmarshal(get(t, coord, "/api/stats").Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Scatter == nil || snap.Scatter.Replication != 2 || snap.Scatter.Degraded != 0 {
		t.Fatalf("scatter stats after kill: %+v", snap.Scatter)
	}

	// Retire the dead member through the admin endpoint. Surviving shards
	// keep their boot-time holdings, but service stays whole: a dataset's
	// best-scoring survivor was already in the old top-2, so every
	// re-derived group's first-ranked owner holds the entire group and
	// failover reaches it even when the probed primary comes up short.
	body := strings.NewReader(`{"action":"remove","shard":"` + identities[1] + `"}`)
	req := httptest.NewRequest(http.MethodPost, "/api/admin/fleet", body)
	req.Header.Set("Authorization", "Bearer sesame")
	rec := httptest.NewRecorder()
	coord.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("fleet remove = %d: %s", rec.Code, rec.Body.String())
	}
	searchParity(t, coord, single, strings.Join(u.ModuleGeneIDs(7)[:3], ","))
	if err := json.Unmarshal(get(t, coord, "/api/stats").Body.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Scatter.ShardsTotal != 2 || snap.Scatter.MembershipBumps != 1 {
		t.Fatalf("scatter stats after remove: %+v", snap.Scatter)
	}
}

// TestBuildServerRoleValidation pins the role flag contract.
func TestBuildServerRoleValidation(t *testing.T) {
	if _, err := buildServer(buildConfig{demo: true, genes: 50, modules: 4, datasets: 1, role: "sharded"}); err == nil {
		t.Fatal("bad role accepted")
	}
	if _, err := buildServer(buildConfig{role: "coordinator"}); err == nil {
		t.Fatal("coordinator without shards accepted")
	}
	if _, err := buildServer(buildConfig{role: "coordinator", shards: []string{"a:1"}, obo: "x"}); err == nil {
		t.Fatal("coordinator with -obo accepted")
	}
	if _, err := buildServer(buildConfig{demo: true, genes: 50, modules: 4, datasets: 2, role: "shard"}); err == nil {
		t.Fatal("shard without -shards/-self accepted")
	}
	if _, err := buildServer(buildConfig{
		demo: true, genes: 50, modules: 4, datasets: 2,
		role: "shard", shards: []string{"a:1", "b:1"}, self: "c:1",
	}); err == nil {
		t.Fatal("-self outside -shards accepted")
	}
	if _, err := buildServer(buildConfig{
		demo: true, genes: 50, modules: 4, datasets: 2,
		role: "shard", shards: []string{"a:1", "b:1"}, self: "a:1", replication: -1,
	}); err == nil {
		t.Fatal("negative -replication accepted")
	}
	if _, err := buildServer(buildConfig{
		role: "coordinator", shards: []string{"a:1", "b:1"}, replication: 3,
	}); err == nil {
		t.Fatal("-replication beyond fleet size accepted")
	}
}

// TestDaemonShardDrainE2E proves the cmd-layer drain wiring end to end: a
// 3-shard R=2 daemon fleet boots with the admin token armed, the
// survivors adopt the post-drain topology through the fleet endpoint, and
// draining the remaining member pushes its warm partials and fires the
// onDrained hook — the callback main turns into a SIGTERM for the
// ordinary graceful shutdown.
func TestDaemonShardDrainE2E(t *testing.T) {
	drained := make(chan string, 3)
	identities, servers := startDaemonFleet(t, 3, 2, 6, "sesame", drained)

	// Warm the victim with a hot shard-level query so the drain has
	// something to hand off.
	u := synth.NewUniverse(200, 8, 7)
	query := u.ModuleGeneIDs(3)[:4]
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(shard.SearchRequest{Query: query}); err != nil {
		t.Fatal(err)
	}
	warm, err := http.Post(servers[0].URL+shard.SearchPath, shard.ContentType, &buf)
	if err != nil {
		t.Fatal(err)
	}
	warm.Body.Close()
	if warm.StatusCode != http.StatusOK {
		t.Fatalf("warming search = %d", warm.StatusCode)
	}

	post := func(url string, body []byte) (*http.Response, []byte) {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Fleet-Token", "sesame")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp, b
	}

	fleetBody, err := json.Marshal(map[string]any{"shards": identities[1:], "replication": 2})
	if err != nil {
		t.Fatal(err)
	}
	// Rolling-restart order: survivors reload to the post-drain topology
	// first, so the drain's generation-guarded push finds them ready.
	for i, hs := range servers[1:] {
		if resp, b := post(hs.URL+shard.ShardFleetPath, fleetBody); resp.StatusCode != http.StatusOK {
			t.Fatalf("survivor %d reload = %d: %s", i+1, resp.StatusCode, b)
		}
	}
	resp, b := post(servers[0].URL+shard.DrainPath, fleetBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drain = %d: %s", resp.StatusCode, b)
	}
	var dr struct {
		Status     string   `json:"status"`
		Pushed     int64    `json:"pushed"`
		Replayed   int64    `json:"replayed"`
		PushErrors []string `json:"push_errors"`
	}
	if err := json.Unmarshal(b, &dr); err != nil {
		t.Fatal(err)
	}
	if dr.Status != shard.StatusDraining || len(dr.PushErrors) != 0 || dr.Pushed+dr.Replayed == 0 {
		t.Fatalf("drain response: %s", b)
	}
	select {
	case id := <-drained:
		if id != identities[0] {
			t.Fatalf("onDrained fired for %q, want %q", id, identities[0])
		}
	case <-time.After(2 * time.Second):
		t.Fatal("onDrained never fired")
	}
}
