package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunDemoRegion(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "view.png")
	list := filepath.Join(dir, "sel.txt")
	merged := filepath.Join(dir, "merged.pcl")
	err := run("", true, "", "0:10:19", "", false, 400, 300, out, list, merged, "", 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{out, list, merged} {
		st, err := os.Stat(p)
		if err != nil {
			t.Fatalf("%s missing: %v", p, err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", p)
		}
	}
}

func TestRunDemoQuery(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "view.png")
	if err := run("", true, "stress response induced", "", "", true, 300, 200, out, "", "", "", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatal(err)
	}
}

func TestRunDemoScript(t *testing.T) {
	dir := t.TempDir()
	script := filepath.Join(dir, "s.fvs")
	png := filepath.Join(dir, "scripted.png")
	body := "select-region 0 0 9\nrender " + png + " 300 200\n"
	if err := os.WriteFile(script, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("", true, "", "", "", false, 300, 200,
		filepath.Join(dir, "ignored.png"), "", "", script, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(png); err != nil {
		t.Fatal("script render output missing")
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "x.png")
	if err := run("/no/such.pcl", false, "", "", "", false, 100, 100, out, "", "", "", 1); err == nil {
		t.Fatal("missing file should error")
	}
	if err := run("", true, "", "bad-region", "", false, 100, 100, out, "", "", "", 1); err == nil {
		t.Fatal("malformed region should error")
	}
	if err := run("", true, "", "a:b:c", "", false, 100, 100, out, "", "", "", 1); err == nil {
		t.Fatal("non-numeric region should error")
	}
	if err := run("", true, "zzz-no-match", "", "", false, 100, 100, out, "", "", "", 1); err == nil {
		t.Fatal("no-match query should error")
	}
}

func TestRunLoadsPCLFiles(t *testing.T) {
	// Generate a demo view, export its merged matrix, reload it as input.
	dir := t.TempDir()
	merged := filepath.Join(dir, "m.pcl")
	if err := run("", true, "", "0:0:9", "", false, 200, 150,
		filepath.Join(dir, "first.png"), "", merged, "", 1); err != nil {
		t.Fatal(err)
	}
	out2 := filepath.Join(dir, "second.png")
	if err := run(merged, false, "", "", "", false, 200, 150, out2, "", "", "", 1); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out2); err != nil {
		t.Fatal(err)
	}
}
