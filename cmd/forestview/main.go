// Command forestview is the headless ForestView application: it loads one
// or more PCL datasets (or generates a demo collection), clusters them,
// applies a selection (region, annotation query, or gene-list file),
// renders the multi-pane display to a PNG, and can export the selection.
//
// Usage:
//
//	forestview -files a.pcl,b.pcl,c.pcl -query "heat shock" -out view.png
//	forestview -demo -region 0:100:140 -width 3072 -height 768
//	forestview -files a.pcl,b.pcl -list genes.txt -export-list sel.txt
package main

import (
	"flag"
	"fmt"
	"image/color"
	"os"
	"strconv"
	"strings"

	"forestview/internal/cluster"
	"forestview/internal/core"
	"forestview/internal/microarray"
	"forestview/internal/render"
	"forestview/internal/synth"
)

func main() {
	var (
		files      = flag.String("files", "", "comma-separated PCL files to load")
		demo       = flag.Bool("demo", false, "generate a three-dataset synthetic demo instead of loading files")
		query      = flag.String("query", "", "annotation search selecting genes across all datasets")
		region     = flag.String("region", "", "region selection pane:from:to (display positions)")
		listFile   = flag.String("list", "", "file with one gene ID per line to select")
		unsync     = flag.Bool("unsync", false, "disable synchronized zoom views")
		width      = flag.Int("width", 1600, "scene width in pixels")
		height     = flag.Int("height", 900, "scene height in pixels")
		out        = flag.String("out", "forestview.png", "output PNG path")
		exportList = flag.String("export-list", "", "also write the selected gene list to this file")
		exportPCL  = flag.String("export-merged", "", "also write the merged selection matrix (PCL) to this file")
		script     = flag.String("script", "", "run this command script against the session instead of the one-shot flags")
		seed       = flag.Int64("seed", 1, "demo generator seed")
	)
	flag.Parse()
	if err := run(*files, *demo, *query, *region, *listFile, *unsync, *width, *height, *out, *exportList, *exportPCL, *script, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "forestview:", err)
		os.Exit(1)
	}
}

func run(files string, demo bool, query, region, listFile string, unsync bool, width, height int, out, exportList, exportPCL, script string, seed int64) error {
	datasets, err := loadDatasets(files, demo, seed)
	if err != nil {
		return err
	}
	var cds []*core.ClusteredDataset
	for _, ds := range datasets {
		cd, err := core.Cluster(ds, core.ClusterOptions{
			Metric: cluster.PearsonDist, Linkage: cluster.AverageLinkage, ClusterArrays: true,
		})
		if err != nil {
			return err
		}
		cds = append(cds, cd)
		fmt.Printf("loaded %q: %d genes x %d experiments\n", ds.Name, ds.NumGenes(), ds.NumExperiments())
	}
	fv, err := core.New(cds)
	if err != nil {
		return err
	}
	fv.SetSynchronized(!unsync)

	if script != "" {
		f, err := os.Open(script)
		if err != nil {
			return err
		}
		defer f.Close()
		res, err := fv.RunScript(f)
		for _, line := range res.Log {
			fmt.Println(line)
		}
		if err != nil {
			return err
		}
		fmt.Printf("script: %d commands executed\n", res.Commands)
		return nil
	}

	switch {
	case query != "":
		n, err := fv.SelectQuery(query)
		if err != nil {
			return err
		}
		fmt.Printf("query %q selected %d genes\n", query, n)
	case region != "":
		parts := strings.Split(region, ":")
		if len(parts) != 3 {
			return fmt.Errorf("region must be pane:from:to, got %q", region)
		}
		pane, err1 := strconv.Atoi(parts[0])
		from, err2 := strconv.Atoi(parts[1])
		to, err3 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil || err3 != nil {
			return fmt.Errorf("region must be numeric pane:from:to, got %q", region)
		}
		if err := fv.SelectRegion(pane, from, to); err != nil {
			return err
		}
		fmt.Printf("region selected %d genes\n", fv.Selection().Len())
	case listFile != "":
		f, err := os.Open(listFile)
		if err != nil {
			return err
		}
		ids, err := microarray.ReadGeneList(f)
		f.Close()
		if err != nil {
			return err
		}
		fv.SelectList(ids, "list "+listFile)
		fmt.Printf("list selected %d genes\n", fv.Selection().Len())
	}

	c := render.NewCanvas(width, height, color.RGBA{A: 255})
	fv.RenderScene(c, width, height)
	if err := c.SavePNG(out); err != nil {
		return err
	}
	fmt.Printf("rendered %dx%d scene with %d panes -> %s\n", width, height, fv.NumPanes(), out)

	if exportList != "" {
		f, err := os.Create(exportList)
		if err != nil {
			return err
		}
		if err := fv.ExportGeneList(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("exported gene list -> %s\n", exportList)
	}
	if exportPCL != "" {
		f, err := os.Create(exportPCL)
		if err != nil {
			return err
		}
		if err := fv.ExportMerged(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("exported merged matrix -> %s\n", exportPCL)
	}
	return nil
}

func loadDatasets(files string, demo bool, seed int64) ([]*microarray.Dataset, error) {
	if demo || files == "" {
		u := synth.NewUniverse(800, 15, seed)
		return synth.StressCaseCollection(u, seed+10)[:3], nil
	}
	var out []*microarray.Dataset
	for _, path := range strings.Split(files, ",") {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		name := strings.TrimSuffix(strings.TrimSuffix(pathBase(path), ".pcl"), ".PCL")
		ds, err := microarray.ReadPCL(f, name)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		out = append(out, ds)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no datasets given (use -files or -demo)")
	}
	return out, nil
}

func pathBase(p string) string {
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		return p[i+1:]
	}
	return p
}
