// Command spell runs a SPELL similarity search over a compendium of PCL
// datasets: given query genes, it prints the ranked dataset list and the
// ranked gene list — or, with -serve, exposes the Figure-4 web interface
// over HTTP.
//
// Usage:
//
//	spell -files a.pcl,b.pcl,c.pcl -query YAL001C,YBR072W -top 25
//	spell -demo -query-module 3 -top 20
//	spell -demo -serve 127.0.0.1:8080
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"strings"
	"text/tabwriter"

	"forestview/internal/microarray"
	"forestview/internal/spell"
	"forestview/internal/spellweb"
	"forestview/internal/synth"
)

func main() {
	var (
		files       = flag.String("files", "", "comma-separated PCL files forming the compendium")
		demo        = flag.Bool("demo", false, "use a synthetic demo compendium")
		query       = flag.String("query", "", "comma-separated query gene IDs")
		queryModule = flag.Int("query-module", -1, "demo mode: query with genes of this synthetic module")
		top         = flag.Int("top", 25, "number of result genes to print")
		serve       = flag.String("serve", "", "serve the SPELL web interface on this address instead of querying once")
		seed        = flag.Int64("seed", 1, "demo generator seed")
	)
	flag.Parse()
	if err := run(*files, *demo, *query, *queryModule, *top, *serve, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "spell:", err)
		os.Exit(1)
	}
}

func run(files string, demo bool, query string, queryModule, top int, serve string, seed int64) error {
	var datasets []*microarray.Dataset
	var queryIDs []string

	if demo || files == "" {
		u := synth.NewUniverse(1000, 20, seed)
		dss, _ := u.GenerateCompendium(synth.CompendiumSpec{
			NumDatasets: 8, MinExperiments: 10, MaxExperiments: 30,
			ActiveFraction: 0.4, Noise: 0.25, MissingRate: 0.02, Seed: seed + 50,
		})
		datasets = dss
		if queryModule >= 0 {
			ids := u.ModuleGeneIDs(queryModule)
			if len(ids) == 0 {
				return fmt.Errorf("module %d has no genes", queryModule)
			}
			n := 4
			if n > len(ids) {
				n = len(ids)
			}
			queryIDs = ids[:n]
			fmt.Printf("demo query: %d genes of module %d (%s)\n",
				n, queryModule, u.Modules[queryModule].Name)
		}
	} else {
		for _, path := range strings.Split(files, ",") {
			path = strings.TrimSpace(path)
			f, err := os.Open(path)
			if err != nil {
				return err
			}
			ds, err := microarray.ReadPCL(f, path)
			f.Close()
			if err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
			datasets = append(datasets, ds)
		}
	}
	if query != "" {
		for _, q := range strings.Split(query, ",") {
			if q = strings.TrimSpace(q); q != "" {
				queryIDs = append(queryIDs, q)
			}
		}
	}

	engine, err := spell.NewEngine(datasets)
	if err != nil {
		return err
	}
	if serve != "" {
		fmt.Printf("serving the SPELL web interface on http://%s (%d datasets, %d genes)\n",
			serve, engine.NumDatasets(), engine.NumGenes())
		return http.ListenAndServe(serve, spellweb.NewServer(engine))
	}
	if len(queryIDs) == 0 {
		return fmt.Errorf("no query genes (use -query or -query-module with -demo)")
	}
	fmt.Printf("compendium: %d datasets, %d distinct genes\n", engine.NumDatasets(), engine.NumGenes())
	res, err := engine.Search(queryIDs, spell.Options{MaxGenes: top})
	if err != nil {
		return err
	}

	fmt.Println("\ndatasets by relevance to the query:")
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "rank\tweight\tcoherence\tquery genes\tdataset")
	for i, d := range res.Datasets {
		fmt.Fprintf(tw, "%d\t%.4f\t%.3f\t%d\t%s\n", i+1, d.Weight, d.QueryCoherence, d.QueryPresent, d.Name)
	}
	tw.Flush()

	fmt.Printf("\ntop %d genes by weighted correlation to the query:\n", len(res.Genes))
	tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "rank\tscore\tgene\tname")
	for i, g := range res.Genes {
		fmt.Fprintf(tw, "%d\t%.4f\t%s\t%s\n", i+1, g.Score, g.ID, g.Name)
	}
	return tw.Flush()
}
