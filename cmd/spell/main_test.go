package main

import (
	"os"
	"path/filepath"
	"testing"

	"forestview/internal/microarray"
	"forestview/internal/synth"
)

func TestRunDemoModuleQuery(t *testing.T) {
	if err := run("", true, "", 3, 10, "", 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunNoQuery(t *testing.T) {
	if err := run("", true, "", -1, 10, "", 1); err == nil {
		t.Fatal("no query should error")
	}
}

func TestRunExplicitQueryAgainstFiles(t *testing.T) {
	dir := t.TempDir()
	u := synth.NewUniverse(80, 6, 9)
	var paths []string
	for i := 0; i < 2; i++ {
		ds := u.Generate(synth.DatasetSpec{Name: "d", NumExperiments: 8, Seed: int64(i + 1)})
		p := filepath.Join(dir, "d"+string(rune('0'+i))+".pcl")
		f, err := os.Create(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := microarray.WritePCL(f, ds); err != nil {
			t.Fatal(err)
		}
		f.Close()
		paths = append(paths, p)
	}
	query := u.Genes[0].ID + "," + u.Genes[1].ID
	if err := run(paths[0]+","+paths[1], false, query, -1, 5, "", 1); err != nil {
		t.Fatal(err)
	}
	if err := run("/no/such.pcl", false, query, -1, 5, "", 1); err == nil {
		t.Fatal("missing file should error")
	}
}
