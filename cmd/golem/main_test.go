package main

import (
	"os"
	"path/filepath"
	"testing"

	"forestview/internal/microarray"
	"forestview/internal/ontology"
	"forestview/internal/synth"
)

func TestRunDemo(t *testing.T) {
	mapOut := filepath.Join(t.TempDir(), "map.png")
	if err := run("", "", "", true, false, 0.05, mapOut, 1, 5, 1); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(mapOut)
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() == 0 {
		t.Fatal("map PNG empty")
	}
}

func TestRunFromFiles(t *testing.T) {
	dir := t.TempDir()
	// Build a small workspace on disk: OBO + associations + gene list.
	u := synth.NewUniverse(120, 8, 31)
	var names []string
	for _, m := range u.Modules {
		names = append(names, m.Name)
	}
	onto, leafOf, err := ontology.Synthetic(ontology.SyntheticSpec{LeafNames: names, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	oboPath := filepath.Join(dir, "o.obo")
	f, _ := os.Create(oboPath)
	if err := ontology.WriteOBO(f, onto); err != nil {
		t.Fatal(err)
	}
	f.Close()
	ann := ontology.AnnotateFromModules(u.Annotations(), leafOf)
	assocPath := filepath.Join(dir, "a.tsv")
	f, _ = os.Create(assocPath)
	if err := ontology.WriteAssociations(f, ann); err != nil {
		t.Fatal(err)
	}
	f.Close()
	genesPath := filepath.Join(dir, "genes.txt")
	f, _ = os.Create(genesPath)
	if err := microarray.WriteGeneList(f, u.ModuleGeneIDs(3), "selection"); err != nil {
		t.Fatal(err)
	}
	f.Close()

	mapOut := filepath.Join(dir, "map.png")
	if err := run(oboPath, assocPath, genesPath, false, true, 0.05, mapOut, 1, 3, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(mapOut); err != nil {
		t.Fatal(err)
	}
}

func TestRunMissingFiles(t *testing.T) {
	if err := run("/no/o.obo", "/no/a.tsv", "/no/g.txt", false, false, 0.05, "", 1, 3, 1); err == nil {
		t.Fatal("missing files should error")
	}
}
