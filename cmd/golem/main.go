// Command golem performs GO enrichment analysis of a gene list and renders
// the local exploration map of the significant terms — the text-and-PNG
// equivalent of the Figure-5 GOLEM window.
//
// Usage:
//
//	golem -obo ontology.obo -assoc associations.tsv -genes list.txt -map map.png
//	golem -demo -map map.png
package main

import (
	"flag"
	"fmt"
	"image/color"
	"os"
	"text/tabwriter"
	"time"

	"forestview/internal/golem"
	"forestview/internal/microarray"
	"forestview/internal/ontology"
	"forestview/internal/render"
	"forestview/internal/synth"
)

func main() {
	var (
		oboPath   = flag.String("obo", "", "OBO ontology file")
		assocPath = flag.String("assoc", "", "gene association file (gene<TAB>term)")
		genesPath = flag.String("genes", "", "file with one selected gene ID per line")
		demo      = flag.Bool("demo", false, "run on synthetic demo data")
		maxP      = flag.Float64("maxp", 0.05, "p-value cutoff for the report")
		mapOut    = flag.String("map", "", "render the local exploration map PNG here")
		mapDepth  = flag.Int("map-depth", 1, "descendant depth of the local map")
		mapTerms  = flag.Int("map-terms", 5, "number of top terms to focus the map on")
		seed      = flag.Int64("seed", 1, "demo seed")
		reference = flag.Bool("reference", false, "score with the retained map-walk path instead of the bitset kernel (parity/benchmark baseline)")
	)
	flag.Parse()
	if err := run(*oboPath, *assocPath, *genesPath, *demo, *reference, *maxP, *mapOut, *mapDepth, *mapTerms, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "golem:", err)
		os.Exit(1)
	}
}

func run(oboPath, assocPath, genesPath string, demo, reference bool, maxP float64, mapOut string, mapDepth, mapTerms int, seed int64) error {
	var (
		onto      *ontology.Ontology
		ann       *ontology.Annotations
		selection []string
		universe  []string
	)
	if demo || oboPath == "" {
		u := synth.NewUniverse(1500, 20, seed)
		var names []string
		for _, m := range u.Modules {
			names = append(names, m.Name)
		}
		var leafOf map[string]string
		var err error
		onto, leafOf, err = ontology.Synthetic(ontology.SyntheticSpec{LeafNames: names, Seed: seed + 3})
		if err != nil {
			return err
		}
		ann = ontology.AnnotateFromModules(u.Annotations(), leafOf)
		universe = u.GeneIDs()
		// Demo selection: the ESR-induced module plus noise genes.
		selection = append(selection, u.ModuleGeneIDs(u.ESRInduced)...)
		selection = append(selection, universe[:20]...)
		fmt.Printf("demo: selecting %d genes (ESR module + 20 random)\n", len(selection))
	} else {
		f, err := os.Open(oboPath)
		if err != nil {
			return err
		}
		onto, err = ontology.ReadOBO(f)
		f.Close()
		if err != nil {
			return err
		}
		af, err := os.Open(assocPath)
		if err != nil {
			return err
		}
		ann, err = ontology.ReadAssociations(af)
		af.Close()
		if err != nil {
			return err
		}
		universe = ann.Genes()
		gf, err := os.Open(genesPath)
		if err != nil {
			return err
		}
		selection, err = microarray.ReadGeneList(gf)
		gf.Close()
		if err != nil {
			return err
		}
	}

	enr, err := golem.NewEnricher(onto, ann, universe)
	if err != nil {
		return err
	}
	analyze, scorer := enr.Analyze, "bitset kernel"
	if reference {
		analyze, scorer = enr.ReferenceAnalyze, "reference map-walk"
	}
	t0 := time.Now()
	results, err := analyze(selection, golem.Options{MaxPValue: maxP})
	if err != nil {
		return err
	}
	elapsed := time.Since(t0)
	fmt.Printf("ontology: %d terms; background: %d genes; selection: %d genes\n",
		onto.Len(), enr.BackgroundSize(), len(selection))
	fmt.Printf("%d terms enriched at p <= %g (%s, %v)\n\n", len(results), maxP, scorer, elapsed.Round(time.Microsecond))

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "term\tname\tk/n\tK/N\tfold\tp\tbonferroni\tFDR")
	for _, r := range results {
		fmt.Fprintf(tw, "%s\t%s\t%d/%d\t%d/%d\t%.1f\t%.2e\t%.2e\t%.2e\n",
			r.TermID, r.TermName, r.Selected, r.SelectionSize,
			r.Background, r.BackgroundSize, r.Fold, r.PValue, r.Bonferroni, r.FDR)
	}
	tw.Flush()

	if mapOut != "" && len(results) > 0 {
		focus := golem.TopTerms(results, mapTerms)
		g := golem.LocalMap(onto, focus, mapDepth)
		lay := golem.LayoutGraph(g, 4)
		byID := make(map[string]golem.Enrichment, len(results))
		for _, r := range results {
			byID[r.TermID] = r
		}
		c := render.NewCanvas(1200, 120*lay.LayerCount+40, color.RGBA{A: 255})
		render.RenderGOGraph(c, render.Rect{X: 10, Y: 10, W: 1180, H: 120*lay.LayerCount + 20}, g, lay,
			render.GOGraphOptions{
				Label: func(id string) string {
					if t := onto.Term(id); t != nil {
						return t.Name
					}
					return id
				},
				NodeColor: func(id string) color.Color {
					r, ok := byID[id]
					if !ok {
						return nil
					}
					// Redder = more significant, scaled by -log10 p.
					v := golem.MinusLog10P(r.PValue)
					if v > 20 {
						v = 20
					}
					return color.RGBA{R: uint8(55 + v*10), G: 40, B: 60, A: 255}
				},
			})
		if err := c.SavePNG(mapOut); err != nil {
			return err
		}
		fmt.Printf("\nlocal exploration map (%d terms, %d layers) -> %s\n",
			len(g.Nodes), lay.LayerCount, mapOut)
	}
	return nil
}
