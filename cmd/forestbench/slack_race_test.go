//go:build race

package main

// panwalkTestSlackMS widens the panwalk p99 gate for race-instrumented
// builds only: instrumentation multiplies render cost roughly tenfold, so
// on CI's small runners a speculative render that has already started
// occupies a core a foreground arrival then queues behind — a serialization
// artifact of the instrumented binary, not of the server. The strict 25ms
// comparison still runs in the non-race test build and in CI's panwalk
// smoke step against the uninstrumented binary.
const panwalkTestSlackMS = "250"
