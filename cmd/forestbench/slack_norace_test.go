//go:build !race

package main

import "strconv"

// panwalkTestSlackMS keeps the panwalk p99 gate at its strict default in
// uninstrumented builds; see slack_race_test.go for why race builds widen
// it.
var panwalkTestSlackMS = strconv.FormatFloat(panwalkP99SlackMS, 'f', -1, 64)
