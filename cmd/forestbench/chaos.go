package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"forestview/internal/faultline"
	"forestview/internal/workload"
)

// chaosOne is the -chaos mode: the replicated 3-shard R=2 fleet under
// open-loop load while a deterministic faultline injector abuses the
// coordinator's scatter paths — one shard drawing the full fault menu
// (5xx, resets, truncated gobs, stalls), another slowed but healthy. The
// topology makes zero degradation a structural obligation rather than a
// timing accident: every ownership group {0,1},{0,2},{1,2} has a member
// that either never faults (shard-0) or only slows down (shard-2), so
// failover always has somewhere correct to go. The gate fails on any 5xx,
// transport error or degraded merge — and also if the injector never
// fired, which would make the whole run vacuous.
func chaosOne(rate float64, stepDur time.Duration, seed int64, outPrefix string, maxP99MS float64, stdout io.Writer) error {
	inj := faultline.New(seed)
	tp, err := newFleetTopology("chaos3r2", 3, 2, 6, 16,
		&http.Client{Transport: inj.Wrap(nil)})
	if err != nil {
		return err
	}
	defer tp.close()
	host := func(i int) string { return strings.TrimPrefix(tp.shardServers[i].URL, "http://") }
	inj.SetRules(
		// shard-1: every other scatter request draws the next fault in the
		// cycle. Stalls are short enough that the per-attempt deadline,
		// retry and failover absorb them well inside the p99 bound.
		faultline.Rule{Host: host(1), Every: 2,
			Kinds: []faultline.Kind{faultline.Err5xx, faultline.Reset, faultline.Truncate, faultline.Stall},
			Delay: 200 * time.Millisecond},
		// shard-2: slow but correct.
		faultline.Rule{Host: host(2), Every: 3,
			Kinds: []faultline.Kind{faultline.Latency},
			Delay: 30 * time.Millisecond},
	)

	jsonlPath := fmt.Sprintf("%s-chaos.jsonl", outPrefix)
	f, err := os.Create(jsonlPath)
	if err != nil {
		return err
	}
	defer f.Close()
	for step := 0; step < 2; step++ {
		plan, err := workload.NewPlan(workload.Spec{
			Rate:     rate * float64(step+1),
			Duration: stepDur,
			Seed:     seed + int64(step),
			Mix:      tp.mix,
			Genes:    tp.genes,
		})
		if err != nil {
			return err
		}
		if _, err := workload.Run(context.Background(), plan, workload.RunOptions{
			BaseURL: tp.url, Out: f, Step: step,
		}); err != nil {
			return err
		}
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	envs, err := workload.ReadEnvelopes(f)
	if err != nil {
		return err
	}
	rep := workload.Analyze(envs, workload.AnalyzeOptions{P99SLOMS: maxP99MS})
	counts := inj.Counts()
	writeChaos := func(w io.Writer) {
		fmt.Fprintf(w, "== chaos chaos3r2: %d requests against %s ==\n", rep.Requests, tp.url)
		fmt.Fprintf(w, "faults injected: %d (", inj.Total())
		kinds := make([]string, 0, len(counts))
		for k := range counts {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		for i, k := range kinds {
			if i > 0 {
				fmt.Fprint(w, ", ")
			}
			fmt.Fprintf(w, "%s=%d", k, counts[k])
		}
		fmt.Fprintln(w, ")")
		rep.WriteText(w)
	}
	writeChaos(stdout)
	fmt.Fprintln(stdout)
	rf, err := os.Create(fmt.Sprintf("%s-chaos-report.txt", outPrefix))
	if err != nil {
		return err
	}
	writeChaos(rf)
	rf.Close()

	if inj.Total() == 0 {
		return fmt.Errorf("injector fired no faults — the chaos gate proved nothing")
	}
	for _, kind := range []string{"err5xx", "reset"} {
		if counts[kind] == 0 {
			return fmt.Errorf("fault kind %s never fired: %v", kind, counts)
		}
	}
	if rep.Degraded > 0 {
		return fmt.Errorf("%d degraded merges under chaos — a fault leaked past failover", rep.Degraded)
	}
	return gate(rep, maxP99MS)
}
