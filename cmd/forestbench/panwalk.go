package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"time"

	"forestview/internal/workload"
)

// This file implements -profile=panwalk: the viewport-pyramid prefetch
// proof. The same correlated pan/zoom walk (workload.NewPanwalkPlan —
// whole-window steps with the prefetcher's own parent/child zoom geometry)
// runs twice against the single-role topology, once with the speculative
// prefetcher off and once with it on, and the gate compares the two:
//
//   - with prefetch on, the steady-state walk must land mostly on warm
//     tiles (hit/prefetched/coalesced), with at least one tile disclosed
//     as "prefetched" — speculation demonstrably ahead of the viewer;
//   - the prefetching run's heatmap p99 must not exceed the cold run's
//     (plus a small scheduling-noise allowance) — speculation may never
//     slow the foreground down.

// panwalkPrefetchWorkers arms the ON run's prefetcher; two workers match
// forestviewd's default.
const panwalkPrefetchWorkers = 2

// panwalkP99SlackMS is the default scheduler-noise allowance between the
// two runs when comparing p99s; both runs are seconds-scale, so a strict
// <= would flake. The -p99-slack flag overrides it — race-instrumented
// test builds need a wider allowance because instrumentation multiplies
// render cost, so speculative renders serialize with foreground requests
// on starved cores in a way an uninstrumented server never exhibits.
const panwalkP99SlackMS = 25.0

// panwalkOne runs the off/on pair and gates. The tile geometry is chosen
// so auto-level selection engages the pyramid (64-row windows over
// 32-pixel tiles resolve to level 1), making the walk exercise pyramid
// slabs, prefetch, and level transitions at once.
func panwalkOne(rate float64, dur time.Duration, seed int64, outPrefix string, maxP99MS, slackMS float64, stdout io.Writer) error {
	spec := workload.Spec{
		Rate:     rate,
		Duration: dur,
		Seed:     seed,
		TileRows: 64,
		TileSize: 32,
	}
	runOnce := func(label string, prefetchWorkers int) (*workload.Report, error) {
		tp, err := newSingleTopology(prefetchWorkers)
		if err != nil {
			return nil, err
		}
		defer tp.close()
		// Pre-cluster every pane: the gate compares steady-state pan
		// latency across the two runs, and a first-touch tree build
		// landing in different windows would drown that signal.
		if err := tp.srv.WarmTrees(context.Background()); err != nil {
			return nil, err
		}
		s := spec
		s.PaneRows = tp.paneRows
		plan, err := workload.NewPanwalkPlan(s)
		if err != nil {
			return nil, err
		}
		f, err := os.Create(fmt.Sprintf("%s-%s.jsonl", outPrefix, label))
		if err != nil {
			return nil, err
		}
		defer f.Close()
		if _, err := workload.Run(context.Background(), plan, workload.RunOptions{
			BaseURL: tp.url, Out: f,
		}); err != nil {
			return nil, err
		}
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			return nil, err
		}
		envs, err := workload.ReadEnvelopes(f)
		if err != nil {
			return nil, err
		}
		rep := workload.Analyze(envs, workload.AnalyzeOptions{P99SLOMS: maxP99MS})
		fmt.Fprintf(stdout, "== panwalk %s: %d requests ==\n", label, rep.Requests)
		rep.WriteText(stdout)
		fmt.Fprintln(stdout)
		return rep, gate(rep, maxP99MS)
	}

	off, err := runOnce("prefetch-off", 0)
	if err != nil {
		return err
	}
	on, err := runOnce("prefetch-on", panwalkPrefetchWorkers)
	if err != nil {
		return err
	}

	hm := on.Endpoints["heatmap"]
	if hm == nil || hm.Requests == 0 {
		return fmt.Errorf("prefetch-on run recorded no heatmap requests")
	}
	if hm.Prefetched == 0 {
		return fmt.Errorf("prefetch-on run served no prefetched tiles (%d hits, %d misses)", hm.Hits, hm.Misses)
	}
	if hm.WarmRate <= 0.5 {
		return fmt.Errorf("prefetch-on walk was mostly cold: warm rate %.0f%% (%d hit / %d miss / %d coalesced / %d prefetched)",
			100*hm.WarmRate, hm.Hits, hm.Misses, hm.Coalesced, hm.Prefetched)
	}
	offHM := off.Endpoints["heatmap"]
	if offHM != nil && hm.Latency.P99 > offHM.Latency.P99+slackMS {
		return fmt.Errorf("prefetch made the walk slower: p99 %.1fms with prefetch vs %.1fms without (+%.0fms slack)",
			hm.Latency.P99, offHM.Latency.P99, slackMS)
	}
	fmt.Fprintf(stdout, "panwalk gate: warm %.0f%% (%d prefetched), p99 %.1fms with prefetch vs %.1fms without\n",
		100*hm.WarmRate, hm.Prefetched, hm.Latency.P99, offHM.Latency.P99)
	return nil
}
