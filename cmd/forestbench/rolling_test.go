package main

import (
	"bytes"
	"context"
	"encoding/gob"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"forestview/internal/shard"
	"forestview/internal/workload"
)

// adminPost drives a token-gated fleet admin endpoint.
func adminPost(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Fleet-Token", fleetAdminToken)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return resp, b
}

// shardGroupSearch posts one shard-level search and returns the status
// plus the X-Forestview-Cache disposition.
func shardGroupSearch(t *testing.T, url string, req shard.SearchRequest) (int, string) {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(req); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+shard.SearchPath, shard.ContentType, &buf)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, resp.Header.Get("X-Forestview-Cache")
}

// TestRollingRestartDrainE2E is the PR's acceptance proof: every shard of
// a 3-shard R=2 fleet is drained, restarted and re-added in sequence while
// an open-loop load runs against the coordinator — and not one response
// is a 5xx or a degraded merge. The rolling order per shard: survivors
// reload to the post-drain topology, the coordinator demotes the victim
// to last-resort, the victim pushes its warm partials and drains out, the
// coordinator drops it, the shard restarts fresh and rejoins. The first
// cycle also proves the warm handoff observable: the drained shard's hot
// query is served as an X-Forestview-Cache hit by every successor on
// first touch.
func TestRollingRestartDrainE2E(t *testing.T) {
	tp, err := newFleetTopology("roll3r2", 3, 2, 6, 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tp.close()

	coordFleet := func(action, id string) {
		t.Helper()
		body, _ := json.Marshal(map[string]string{"action": action, "shard": id})
		if resp, b := adminPost(t, tp.url+"/api/admin/fleet", body); resp.StatusCode != http.StatusOK {
			t.Fatalf("fleet %s %s = %d: %s", action, id, resp.StatusCode, b)
		}
	}

	const loadDur = 6 * time.Second
	plan, err := workload.NewPlan(workload.Spec{
		Rate:     40,
		Duration: loadDur,
		Seed:     11,
		Mix:      workload.Mix{Search: 2, Enrich: 1},
		Genes:    tp.genes,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	runDone := make(chan error, 1)
	t0 := time.Now()
	go func() {
		_, err := workload.Run(context.Background(), plan, workload.RunOptions{BaseURL: tp.url, Out: &buf})
		runDone <- err
	}()
	time.Sleep(400 * time.Millisecond) // let the load reach steady state

	hotQuery := tp.u.ModuleGeneIDs(2)[:4]
	for i, victim := range tp.identities {
		var survivors []string
		for _, id := range tp.identities {
			if id != victim {
				survivors = append(survivors, id)
			}
		}
		fleetBody, err := json.Marshal(map[string]any{"shards": survivors, "replication": tp.repl})
		if err != nil {
			t.Fatal(err)
		}

		if i == 0 {
			// Make one query hot on the victim so the first cycle can prove
			// the handoff warms its successors.
			if code, disp := shardGroupSearch(t, tp.resolve(victim), shard.SearchRequest{Query: hotQuery}); code != http.StatusOK {
				t.Fatalf("warming search on %s = %d/%s", victim, code, disp)
			}
		}

		// Survivors adopt the post-drain topology first, so the victim's
		// generation-guarded push finds them ready.
		for _, id := range survivors {
			if resp, b := adminPost(t, tp.resolve(id)+shard.ShardFleetPath, fleetBody); resp.StatusCode != http.StatusOK {
				t.Fatalf("cycle %d: survivor %s reload = %d: %s", i, id, resp.StatusCode, b)
			}
		}
		coordFleet("drain", victim)
		resp, b := adminPost(t, tp.resolve(victim)+shard.DrainPath, fleetBody)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("cycle %d: drain %s = %d: %s", i, victim, resp.StatusCode, b)
		}
		var dr struct {
			Status     string   `json:"status"`
			Pushed     int64    `json:"pushed"`
			Replayed   int64    `json:"replayed"`
			PushErrors []string `json:"push_errors"`
		}
		if err := json.Unmarshal(b, &dr); err != nil {
			t.Fatal(err)
		}
		if dr.Status != shard.StatusDraining || len(dr.PushErrors) != 0 {
			t.Fatalf("cycle %d: drain response %s", i, b)
		}
		if i == 0 {
			if dr.Pushed+dr.Replayed == 0 {
				t.Fatalf("cycle 0: warmed drain pushed nothing: %s", b)
			}
			// The warm-hit proof, before the coordinator switches to the
			// 2-shard topology (so only the handoff can have filled these
			// cache keys): every successor of every post-drain ownership
			// group serves the victim's hot query warm on first touch.
			for _, owners := range shard.Groups(tp.names, survivors, tp.repl) {
				for _, owner := range owners {
					code, disp := shardGroupSearch(t, tp.resolve(owner), shard.SearchRequest{
						Query: hotQuery, Shards: survivors, Replication: tp.repl, Owners: owners,
					})
					if code != http.StatusOK || disp != "hit" {
						t.Fatalf("post-drain search on %s (group %v) = %d/%q, want 200/hit", owner, owners, code, disp)
					}
				}
			}
		}
		coordFleet("remove", victim)
		if err := tp.restartShard(i); err != nil {
			t.Fatalf("cycle %d: restart %s: %v", i, victim, err)
		}
		// Everyone returns to the full-fleet view before the coordinator
		// readmits the restarted member.
		fullBody, _ := json.Marshal(map[string]any{"shards": tp.identities, "replication": tp.repl})
		for _, id := range survivors {
			if resp, b := adminPost(t, tp.resolve(id)+shard.ShardFleetPath, fullBody); resp.StatusCode != http.StatusOK {
				t.Fatalf("cycle %d: survivor %s rejoin reload = %d: %s", i, id, resp.StatusCode, b)
			}
		}
		coordFleet("add", victim)
	}
	seq := time.Since(t0)
	if seq >= loadDur {
		t.Fatalf("rolling restart took %v, outlasting the %v load window — the zero-degraded claim was not under load", seq, loadDur)
	}

	if err := <-runDone; err != nil {
		t.Fatal(err)
	}
	envs, err := workload.ReadEnvelopes(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(envs) < 100 {
		t.Fatalf("only %d envelopes — not a load", len(envs))
	}
	seqMS := float64(seq / time.Millisecond)
	after := 0
	for _, e := range envs {
		if e.Status != http.StatusOK {
			t.Fatalf("non-200 during rolling restart: %+v", e)
		}
		if e.Degraded {
			t.Fatalf("degraded merge during rolling restart: %+v", e)
		}
		if e.SchedMS > seqMS {
			after++
		}
	}
	if after == len(envs) {
		t.Fatalf("all %d envelopes issued after the restart sequence", len(envs))
	}
}
