// Command forestbench drives an open-loop load against a running
// forestviewd (any role: single, shard or coordinator) and folds the
// recorded per-request envelopes into latency and capacity reports.
//
// The generator is open-loop — arrivals are scheduled by a Poisson clock
// at the offered rate before the first request is sent — so a saturated
// server shows up as growing scheduled-relative latency, not as a quietly
// reduced load (the coordinated-omission trap of closed-loop drivers; see
// EXPERIMENTS.md for the methodology).
//
// Usage:
//
//	# replay a mixed session at 100 req/s for 30s, one JSONL line per request
//	forestbench run -target http://127.0.0.1:8080 -rate 100 -duration 30s -out run.jsonl
//
//	# stepped rate sweep for a capacity curve
//	forestbench run -target http://127.0.0.1:8080 -sweep 50,100,200,400 -step-duration 10s -out sweep.jsonl
//
//	# fold envelopes into p50/p95/p99 per endpoint, error/degraded rates
//	# and the max sustainable rate; gate CI on the result and keep the
//	# latency-vs-rate curve for plotting
//	forestbench analyze -in sweep.jsonl -fail-on-5xx -max-p99 2000 -csv sweep.csv
//
//	# seconds-scale self-contained proof against in-process topologies
//	# (-topology all adds the replicated 4-shard fleet)
//	forestbench -profile=smoke -topology both
//
// run generates queries for the daemon's -demo compendium by regenerating
// the same synthetic universe; point -demo-genes/-demo-modules/-demo-seed/
// -demo-datasets at the daemon's flags (defaults match forestviewd's).
// Against a file compendium, pass -gene-ids and -pane-rows explicitly.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"forestview/internal/synth"
	"forestview/internal/workload"
)

func main() {
	os.Exit(runMain(os.Args[1:], os.Stdout, os.Stderr))
}

// runMain is main with its environment injected, so E2E tests run the
// real CLI in-process.
func runMain(args []string, stdout, stderr io.Writer) int {
	if len(args) > 0 {
		switch args[0] {
		case "run":
			return cmdRun(args[1:], stderr)
		case "analyze":
			return cmdAnalyze(args[1:], stdout, stderr)
		}
	}
	fs := flag.NewFlagSet("forestbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		profile  = fs.String("profile", "", `"smoke": seconds-scale run against in-process topologies; "panwalk": correlated pan/zoom walk with the speculative prefetcher off vs on`)
		chaos    = fs.Bool("chaos", false, "run the chaos gate: the replicated fleet under deterministic fault injection must stay 5xx-free and non-degraded")
		topo     = fs.String("topology", "both", `smoke topology: "single", "shard2" (coordinator + 2 shards, R=1), "shard4" (coordinator + 4 shards, R=2), "both" (single+shard2) or "all"`)
		rate     = fs.Float64("rate", 40, "smoke base rate, req/s (the sweep steps are 1x and 2x)")
		stepDur  = fs.Duration("step-duration", 1200*time.Millisecond, "smoke duration per sweep step")
		seed     = fs.Int64("seed", 1, "workload seed (and the chaos injection schedule's seed)")
		out      = fs.String("out", "forestbench-smoke", "smoke artifact prefix (<out>-<topology>.jsonl, <out>-<topology>-report.txt)")
		maxP99MS = fs.Float64("max-p99", 2000, "fail if overall p99 latency exceeds this many ms")
		p99Slack = fs.Float64("p99-slack", panwalkP99SlackMS, "panwalk: scheduling-noise allowance when comparing prefetch-on vs prefetch-off p99, ms")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *chaos {
		if err := chaosOne(*rate, *stepDur, *seed, *out, *maxP99MS, stdout); err != nil {
			fmt.Fprintf(stderr, "forestbench: chaos: %v\n", err)
			return 1
		}
		return 0
	}
	if *profile == "panwalk" {
		if err := panwalkOne(*rate, *stepDur, *seed, *out, *maxP99MS, *p99Slack, stdout); err != nil {
			fmt.Fprintf(stderr, "forestbench: panwalk: %v\n", err)
			return 1
		}
		return 0
	}
	if *profile != "smoke" {
		fmt.Fprintln(stderr, `forestbench: expected "run", "analyze", -chaos, -profile=smoke or -profile=panwalk`)
		fs.Usage()
		return 2
	}
	var topos []string
	switch *topo {
	case "both":
		topos = []string{"single", "shard2"}
	case "all":
		topos = []string{"single", "shard2", "shard4"}
	default:
		topos = []string{*topo}
	}
	code := 0
	for _, name := range topos {
		if err := smokeOne(name, *rate, *stepDur, *seed, *out, *maxP99MS, stdout); err != nil {
			fmt.Fprintf(stderr, "forestbench: smoke %s: %v\n", name, err)
			code = 1
		}
	}
	return code
}

// smokeOne loads one in-process topology with a two-step rate sweep and
// gates on the analysis: any 5xx or transport error fails, as does an
// overall p99 beyond maxP99MS.
func smokeOne(name string, rate float64, stepDur time.Duration, seed int64, outPrefix string, maxP99MS float64, stdout io.Writer) error {
	tp, err := newTopology(name, 32<<20)
	if err != nil {
		return err
	}
	defer tp.close()

	jsonlPath := fmt.Sprintf("%s-%s.jsonl", outPrefix, name)
	f, err := os.Create(jsonlPath)
	if err != nil {
		return err
	}
	defer f.Close()
	for step := 0; step < 2; step++ {
		plan, err := workload.NewPlan(workload.Spec{
			Rate:     rate * float64(step+1),
			Duration: stepDur,
			Seed:     seed + int64(step),
			Mix:      tp.mix,
			Genes:    tp.genes,
			PaneRows: tp.paneRows,
		})
		if err != nil {
			return err
		}
		if _, err := workload.Run(context.Background(), plan, workload.RunOptions{
			BaseURL: tp.url, Out: f, Step: step,
		}); err != nil {
			return err
		}
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	envs, err := workload.ReadEnvelopes(f)
	if err != nil {
		return err
	}
	rep := workload.Analyze(envs, workload.AnalyzeOptions{P99SLOMS: maxP99MS})
	fmt.Fprintf(stdout, "== smoke %s: %d requests against %s ==\n", name, rep.Requests, tp.url)
	rep.WriteText(stdout)
	fmt.Fprintln(stdout)
	rf, err := os.Create(fmt.Sprintf("%s-%s-report.txt", outPrefix, name))
	if err != nil {
		return err
	}
	rep.WriteText(rf)
	rf.Close()
	cf, err := os.Create(fmt.Sprintf("%s-%s-sweep.csv", outPrefix, name))
	if err != nil {
		return err
	}
	if err := rep.WriteCSV(cf); err != nil {
		cf.Close()
		return err
	}
	cf.Close()
	return gate(rep, maxP99MS)
}

// gate is the pass/fail fold shared by smoke and analyze -fail-on-5xx.
func gate(rep *workload.Report, maxP99MS float64) error {
	if rep.Requests == 0 {
		return fmt.Errorf("no envelopes recorded")
	}
	if rep.Errors5xx > 0 {
		return fmt.Errorf("%d 5xx responses", rep.Errors5xx)
	}
	if rep.Transport > 0 {
		return fmt.Errorf("%d transport errors", rep.Transport)
	}
	if maxP99MS > 0 && rep.Latency.P99 > maxP99MS {
		return fmt.Errorf("p99 %.1fms exceeds bound %.1fms", rep.Latency.P99, maxP99MS)
	}
	return nil
}

func cmdRun(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("forestbench run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		target  = fs.String("target", "", "base URL of the daemon under load (required)")
		rate    = fs.Float64("rate", 50, "open-loop arrival rate, req/s")
		dur     = fs.Duration("duration", 10*time.Second, "run length (single step)")
		sweep   = fs.String("sweep", "", "comma-separated rates for a stepped sweep (overrides -rate)")
		stepDur = fs.Duration("step-duration", 10*time.Second, "duration of each sweep step")
		seed    = fs.Int64("seed", 1, "workload seed")
		mixFlag = fs.String("mix", "search=5,heatmap=3,enrich=2,stats=0", "endpoint mix weights")
		out     = fs.String("out", "-", `JSONL output path ("-" = stdout)`)

		demoGenes    = fs.Int("demo-genes", 1500, "daemon's -genes (regenerates the demo universe for queries)")
		demoModules  = fs.Int("demo-modules", 20, "daemon's -modules")
		demoSeed     = fs.Int64("demo-seed", 1, "daemon's -seed")
		demoDatasets = fs.Int("demo-datasets", 8, "daemon's -datasets (pane count)")
		geneIDs      = fs.String("gene-ids", "", "comma-separated queryable gene IDs (overrides the demo universe)")
		paneRows     = fs.String("pane-rows", "", "comma-separated per-dataset row counts (overrides the demo universe)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *target == "" {
		fmt.Fprintln(stderr, "forestbench run: -target is required")
		return 2
	}
	mix, err := parseMix(*mixFlag)
	if err != nil {
		fmt.Fprintln(stderr, "forestbench run:", err)
		return 2
	}
	spec := workload.Spec{Seed: *seed, Mix: mix}
	if *geneIDs != "" {
		spec.Genes = strings.Split(*geneIDs, ",")
	}
	if *paneRows != "" {
		for _, s := range strings.Split(*paneRows, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				fmt.Fprintf(stderr, "forestbench run: bad -pane-rows entry %q\n", s)
				return 2
			}
			spec.PaneRows = append(spec.PaneRows, n)
		}
	}
	if spec.Genes == nil && (mix.Search > 0 || mix.Enrich > 0) {
		spec.Genes = synth.NewUniverse(*demoGenes, *demoModules, *demoSeed).GeneIDs()
	}
	if spec.PaneRows == nil && mix.Heatmap > 0 {
		// Demo datasets each span the full universe, so every pane has
		// -demo-genes rows.
		for i := 0; i < *demoDatasets; i++ {
			spec.PaneRows = append(spec.PaneRows, *demoGenes)
		}
	}

	rates := []float64{*rate}
	durs := []time.Duration{*dur}
	if *sweep != "" {
		rates = rates[:0]
		for _, s := range strings.Split(*sweep, ",") {
			r, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil || r <= 0 {
				fmt.Fprintf(stderr, "forestbench run: bad -sweep entry %q\n", s)
				return 2
			}
			rates = append(rates, r)
		}
		durs = nil
		for range rates {
			durs = append(durs, *stepDur)
		}
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(stderr, "forestbench run:", err)
			return 1
		}
		defer f.Close()
		w = f
	}
	total := 0
	for step, r := range rates {
		spec.Rate = r
		spec.Duration = durs[step]
		spec.Seed = *seed + int64(step)
		plan, err := workload.NewPlan(spec)
		if err != nil {
			fmt.Fprintln(stderr, "forestbench run:", err)
			return 2
		}
		fmt.Fprintf(stderr, "step %d: %g req/s for %v (%d requests) against %s\n",
			step, r, durs[step], len(plan.Ops), *target)
		n, err := workload.Run(context.Background(), plan, workload.RunOptions{
			BaseURL: *target, Out: w, Step: step,
		})
		total += n
		if err != nil {
			fmt.Fprintln(stderr, "forestbench run:", err)
			return 1
		}
	}
	fmt.Fprintf(stderr, "wrote %d envelopes\n", total)
	return 0
}

func cmdAnalyze(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("forestbench analyze", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in        = fs.String("in", "-", `JSONL envelope path ("-" = stdin)`)
		asJSON    = fs.Bool("json", false, "emit the report as JSON instead of text")
		csvOut    = fs.String("csv", "", `write the per-step latency-vs-rate sweep as CSV to this path ("-" = stdout)`)
		stallMS   = fs.Float64("stall-ms", 5, "issue-delay threshold counted as a generator stall")
		sloP99    = fs.Float64("slo-p99", 1000, "per-step p99 bound for the capacity model, ms")
		failOn5xx = fs.Bool("fail-on-5xx", false, "exit nonzero if any 5xx or transport error was recorded")
		maxP99MS  = fs.Float64("max-p99", 0, "exit nonzero if overall p99 exceeds this many ms (0 = no gate)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var r io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(stderr, "forestbench analyze:", err)
			return 1
		}
		defer f.Close()
		r = f
	}
	envs, err := workload.ReadEnvelopes(r)
	if err != nil {
		fmt.Fprintln(stderr, "forestbench analyze:", err)
		return 1
	}
	rep := workload.Analyze(envs, workload.AnalyzeOptions{StallMS: *stallMS, P99SLOMS: *sloP99})
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(stderr, "forestbench analyze:", err)
			return 1
		}
	} else {
		rep.WriteText(stdout)
	}
	if *csvOut != "" {
		var cw io.Writer = stdout
		if *csvOut != "-" {
			f, err := os.Create(*csvOut)
			if err != nil {
				fmt.Fprintln(stderr, "forestbench analyze:", err)
				return 1
			}
			defer f.Close()
			cw = f
		}
		if err := rep.WriteCSV(cw); err != nil {
			fmt.Fprintln(stderr, "forestbench analyze:", err)
			return 1
		}
	}
	if *failOn5xx {
		if rep.Errors5xx > 0 || rep.Transport > 0 {
			fmt.Fprintf(stderr, "forestbench analyze: %d 5xx, %d transport errors\n", rep.Errors5xx, rep.Transport)
			return 1
		}
		if rep.Requests == 0 {
			fmt.Fprintln(stderr, "forestbench analyze: no envelopes")
			return 1
		}
	}
	if *maxP99MS > 0 && rep.Latency.P99 > *maxP99MS {
		fmt.Fprintf(stderr, "forestbench analyze: p99 %.1fms exceeds -max-p99 %.1fms\n", rep.Latency.P99, *maxP99MS)
		return 1
	}
	return 0
}

// parseMix parses "search=5,heatmap=3,enrich=2,stats=0".
func parseMix(s string) (workload.Mix, error) {
	var m workload.Mix
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return m, fmt.Errorf("bad mix entry %q (want name=weight)", part)
		}
		w, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil {
			return m, fmt.Errorf("bad mix weight in %q", part)
		}
		switch strings.TrimSpace(name) {
		case "search":
			m.Search = w
		case "heatmap":
			m.Heatmap = w
		case "enrich":
			m.Enrich = w
		case "stats":
			m.Stats = w
		default:
			return m, fmt.Errorf("unknown mix endpoint %q", name)
		}
	}
	return m, nil
}
