package main

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"forestview/internal/workload"
)

// TestSmokeProfileShard2Fleet is the fleet E2E: the real CLI smoke profile
// pushed through a coordinator + 2 shard-server topology. Zero 5xx, and
// every envelope carries the exact shard tally its endpoint promises.
func TestSmokeProfileShard2Fleet(t *testing.T) {
	dir := t.TempDir()
	prefix := filepath.Join(dir, "sm")
	var stdout, stderr bytes.Buffer
	code := runMain([]string{
		"-profile=smoke", "-topology=shard2",
		"-rate", "30", "-step-duration", "800ms", "-out", prefix,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("smoke exited %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	f, err := os.Open(prefix + "-shard2.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	envs, err := workload.ReadEnvelopes(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(envs) == 0 {
		t.Fatal("smoke produced no envelopes")
	}
	searches, enriches := 0, 0
	for _, e := range envs {
		if e.Status >= 500 || e.Status == 0 {
			t.Fatalf("envelope failed: %+v", e)
		}
		switch e.Endpoint {
		case "search":
			searches++
			if e.ShardsOK != 2 || e.ShardsTotal != 2 || e.Degraded {
				t.Fatalf("search envelope shard tally %d/%d degraded=%t, want 2/2 false: %+v",
					e.ShardsOK, e.ShardsTotal, e.Degraded, e)
			}
			if e.Cache == "" {
				t.Fatalf("search envelope without cache disposition: %+v", e)
			}
		case "enrich":
			// Both shards own datasets at R=1, so the enrich scatter has
			// two single-owner groups and both shards contribute tallies.
			enriches++
			if e.ShardsOK != 2 || e.ShardsTotal != 2 || e.Degraded {
				t.Fatalf("enrich envelope shard tally %d/%d degraded=%t, want 2/2 false: %+v",
					e.ShardsOK, e.ShardsTotal, e.Degraded, e)
			}
			if e.Cache == "" {
				t.Fatalf("enrich envelope without cache disposition: %+v", e)
			}
		case "stats":
			if e.ShardsOK != 0 || e.ShardsTotal != 0 {
				t.Fatalf("stats envelope has shard headers: %+v", e)
			}
		default:
			t.Fatalf("unexpected endpoint %q in shard2 smoke", e.Endpoint)
		}
	}
	if searches == 0 || enriches == 0 {
		t.Fatalf("endpoint coverage: %d searches, %d enriches", searches, enriches)
	}
	// The analyze report made it to stdout and to the artifact file.
	if !strings.Contains(stdout.String(), "max sustainable rate") {
		t.Fatalf("no capacity estimate in output:\n%s", stdout.String())
	}
	rep, err := os.ReadFile(prefix + "-shard2-report.txt")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"p50", "search", "requests:"} {
		if !strings.Contains(string(rep), want) {
			t.Fatalf("report artifact missing %q:\n%s", want, rep)
		}
	}
	csv, err := os.ReadFile(prefix + "-shard2-sweep.csv")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(csv)), "\n")
	if !strings.HasPrefix(lines[0], "step,offered_qps,achieved_qps,") {
		t.Fatalf("sweep CSV header: %q", lines[0])
	}
	if len(lines) != 3 { // header + the two sweep steps
		t.Fatalf("sweep CSV has %d lines, want 3:\n%s", len(lines), csv)
	}
}

// TestSmokeProfileSingle: the single-daemon smoke exercises all four
// endpoints and passes its own gate.
func TestSmokeProfileSingle(t *testing.T) {
	dir := t.TempDir()
	prefix := filepath.Join(dir, "sm")
	var stdout, stderr bytes.Buffer
	code := runMain([]string{
		"-profile=smoke", "-topology=single",
		"-rate", "30", "-step-duration", "800ms", "-out", prefix,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("smoke exited %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	f, err := os.Open(prefix + "-single.jsonl")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	envs, err := workload.ReadEnvelopes(f)
	if err != nil {
		t.Fatal(err)
	}
	byEndpoint := map[string]int{}
	for _, e := range envs {
		if e.Status >= 500 || e.Status == 0 {
			t.Fatalf("envelope failed: %+v", e)
		}
		byEndpoint[e.Endpoint]++
	}
	for _, ep := range []string{"search", "heatmap", "enrich", "stats"} {
		if byEndpoint[ep] == 0 {
			t.Fatalf("no %s envelopes in %v", ep, byEndpoint)
		}
	}
}

// TestShardKillMidRun: kill one of two shard servers mid-run. The
// coordinator must degrade — every response after the kill is a 200 with
// Degraded=true over the 1 surviving shard — and never error. The
// coordinator cache is tiny so post-kill searches genuinely re-scatter
// instead of replaying cached full merges.
func TestShardKillMidRun(t *testing.T) {
	tp, err := newShard2Topology(16)
	if err != nil {
		t.Fatal(err)
	}
	defer tp.close()

	const (
		killAt   = 1500 * time.Millisecond
		marginMS = 500
	)
	plan, err := workload.NewPlan(workload.Spec{
		Rate:     50,
		Duration: 3 * time.Second,
		Seed:     5,
		Mix:      workload.Mix{Search: 1},
		Genes:    tp.genes,
	})
	if err != nil {
		t.Fatal(err)
	}
	timer := time.AfterFunc(killAt, tp.shardServers[1].Close)
	defer timer.Stop()
	var buf bytes.Buffer
	n, err := workload.Run(context.Background(), plan, workload.RunOptions{BaseURL: tp.url, Out: &buf})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(plan.Ops) {
		t.Fatalf("wrote %d envelopes for %d ops", n, len(plan.Ops))
	}
	envs, err := workload.ReadEnvelopes(&buf)
	if err != nil {
		t.Fatal(err)
	}
	killMS := float64(killAt / time.Millisecond)
	var healthy, degraded int
	for _, e := range envs {
		// The invariant under fire: never an error, only flagged degradation.
		if e.Status != 200 {
			t.Fatalf("non-200 under shard kill: %+v", e)
		}
		if e.ShardsTotal != 2 {
			t.Fatalf("shard tally total %d, want 2: %+v", e.ShardsTotal, e)
		}
		switch {
		case e.SchedMS+e.LatencyMS < killMS:
			// Completed before the kill: a full merge.
			healthy++
			if e.Degraded || e.ShardsOK != 2 {
				t.Fatalf("pre-kill envelope degraded: %+v", e)
			}
		case e.SchedMS > killMS+marginMS:
			// Scheduled well after the kill: must be a flagged survivor merge.
			degraded++
			if !e.Degraded || e.ShardsOK != 1 {
				t.Fatalf("post-kill envelope not degraded: %+v", e)
			}
		}
	}
	if healthy == 0 || degraded == 0 {
		t.Fatalf("kill not straddled: %d healthy, %d degraded of %d", healthy, degraded, len(envs))
	}
}

// TestReplicatedFleetKillMidRun is the replication acceptance proof: a
// 3-shard fleet at replication 2 loses one shard mid-run, and because
// every dataset still has a live owner, the coordinator keeps answering
// full merges — zero 5xx, zero transport errors, zero degraded envelopes,
// before and after the kill, for searches and enrichments alike. The tiny
// coordinator cache forces every post-kill request to genuinely
// re-scatter through replica failover.
func TestReplicatedFleetKillMidRun(t *testing.T) {
	tp, err := newFleetTopology("fleet3r2", 3, 2, 6, 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer tp.close()

	const killAt = 1200 * time.Millisecond
	plan, err := workload.NewPlan(workload.Spec{
		Rate:     50,
		Duration: 3 * time.Second,
		Seed:     9,
		Mix:      workload.Mix{Search: 1, Enrich: 1},
		Genes:    tp.genes,
	})
	if err != nil {
		t.Fatal(err)
	}
	timer := time.AfterFunc(killAt, tp.shardServers[1].Close)
	defer timer.Stop()
	var buf bytes.Buffer
	n, err := workload.Run(context.Background(), plan, workload.RunOptions{BaseURL: tp.url, Out: &buf})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(plan.Ops) {
		t.Fatalf("wrote %d envelopes for %d ops", n, len(plan.Ops))
	}
	envs, err := workload.ReadEnvelopes(&buf)
	if err != nil {
		t.Fatal(err)
	}
	killMS := float64(killAt / time.Millisecond)
	postKill := map[string]int{}
	for _, e := range envs {
		if e.Status != 200 {
			t.Fatalf("non-200 under replicated shard kill: %+v", e)
		}
		if e.Degraded {
			t.Fatalf("degraded merge despite replication: %+v", e)
		}
		if e.ShardsTotal != 3 {
			t.Fatalf("shard tally total %d, want 3: %+v", e.ShardsTotal, e)
		}
		if e.SchedMS > killMS {
			postKill[e.Endpoint]++
		}
	}
	// Both scattered endpoints must straddle the kill, or the zero-degraded
	// claim proved nothing about failover.
	if postKill["search"] == 0 || postKill["enrich"] == 0 {
		t.Fatalf("kill not straddled per endpoint: %v of %d envelopes", postKill, len(envs))
	}
}

// TestRunAndAnalyzeSubcommands: the two CLI subcommands against a live
// topology — run writes JSONL, analyze folds and gates it.
func TestRunAndAnalyzeSubcommands(t *testing.T) {
	tp, err := newSingleTopology(0)
	if err != nil {
		t.Fatal(err)
	}
	defer tp.close()

	out := filepath.Join(t.TempDir(), "run.jsonl")
	var stdout, stderr bytes.Buffer
	code := runMain([]string{"run",
		"-target", tp.url,
		"-rate", "40", "-duration", "700ms",
		"-mix", "search=3,stats=1",
		"-gene-ids", strings.Join(tp.genes[:30], ","),
		"-out", out,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("run exited %d: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "wrote ") {
		t.Fatalf("run progress missing: %s", stderr.String())
	}

	stdout.Reset()
	stderr.Reset()
	code = runMain([]string{"analyze", "-in", out, "-fail-on-5xx", "-max-p99", "5000"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("analyze exited %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	for _, want := range []string{"requests:", "search", "stats"} {
		if !strings.Contains(stdout.String(), want) {
			t.Fatalf("analyze output missing %q:\n%s", want, stdout.String())
		}
	}

	// The JSON form round-trips through the report schema.
	stdout.Reset()
	if code := runMain([]string{"analyze", "-in", out, "-json"}, &stdout, &stderr); code != 0 {
		t.Fatalf("analyze -json exited %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), `"capacity_qps"`) {
		t.Fatalf("JSON report missing capacity_qps:\n%s", stdout.String())
	}

	// -csv writes the per-step latency-vs-rate curve.
	csvPath := filepath.Join(t.TempDir(), "sweep.csv")
	stdout.Reset()
	if code := runMain([]string{"analyze", "-in", out, "-csv", csvPath}, &stdout, &stderr); code != 0 {
		t.Fatalf("analyze -csv exited %d: %s", code, stderr.String())
	}
	csv, err := os.ReadFile(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(csv)), "\n")
	if !strings.HasPrefix(lines[0], "step,offered_qps,") || len(lines) != 2 {
		t.Fatalf("analyze CSV:\n%s", csv)
	}
	if !strings.HasSuffix(lines[1], ",true") && !strings.HasSuffix(lines[1], ",false") {
		t.Fatalf("analyze CSV row missing sustained column: %q", lines[1])
	}
}

// TestPanwalkProfile runs the full prefetch-off/prefetch-on panwalk
// comparison through the CLI: both runs must gate clean, the ON run must
// serve prefetched tiles, and both JSONL artifacts must exist.
func TestPanwalkProfile(t *testing.T) {
	dir := t.TempDir()
	prefix := filepath.Join(dir, "pw")
	var stdout, stderr bytes.Buffer
	// Rate 25 leaves the render pool idle often enough that the
	// prefetcher stays ahead of the walk even with the race detector
	// slowing every render (speculation yields whenever foreground work
	// is queued, so an overdriven walk starves it by design). The p99
	// slack is build-tagged: strict by default, widened under race where
	// instrumented renders serialize speculation with the foreground.
	code := runMain([]string{
		"-profile=panwalk",
		"-rate", "25", "-step-duration", "2s", "-out", prefix,
		"-p99-slack", panwalkTestSlackMS,
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("panwalk exited %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	for _, label := range []string{"prefetch-off", "prefetch-on"} {
		f, err := os.Open(prefix + "-" + label + ".jsonl")
		if err != nil {
			t.Fatal(err)
		}
		envs, err := workload.ReadEnvelopes(f)
		f.Close()
		if err != nil {
			t.Fatal(err)
		}
		prefetched := 0
		for _, e := range envs {
			if e.Endpoint != "heatmap" {
				t.Fatalf("%s: non-heatmap envelope %+v", label, e)
			}
			if e.Cache == "prefetched" {
				prefetched++
			}
		}
		if label == "prefetch-off" && prefetched != 0 {
			t.Fatalf("prefetch-off run disclosed %d prefetched tiles", prefetched)
		}
		if label == "prefetch-on" && prefetched == 0 {
			t.Fatal("prefetch-on run disclosed no prefetched tiles")
		}
	}
	if !strings.Contains(stdout.String(), "panwalk gate:") {
		t.Fatalf("missing gate summary in stdout:\n%s", stdout.String())
	}
}
