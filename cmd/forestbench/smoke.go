package main

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"

	"forestview/internal/cluster"
	"forestview/internal/golem"
	"forestview/internal/microarray"
	"forestview/internal/ontology"
	"forestview/internal/server"
	"forestview/internal/shard"
	"forestview/internal/spell"
	"forestview/internal/synth"
	"forestview/internal/workload"
)

// fleetAdminToken arms every fleet topology's admin surface — the
// coordinator's /api/admin/fleet and the shards' drain/handoff/fleet
// endpoints — so drain and chaos harnesses can drive rolling restarts.
const fleetAdminToken = "bench-fleet-token"

// This file builds the in-process topologies behind -profile=smoke: real
// server.Server instances behind httptest listeners, so CI can push a
// seconds-scale open-loop load through the exact fleet wiring — including
// a coordinator scattering over replicated shard daemons — without sockets
// to provision or processes to babysit. The E2E tests reuse these builders.

// smokeUniverse are the demo-compendium parameters every smoke topology
// shares; kept small so a full smoke run stays seconds-scale.
const (
	smokeGenes    = 300
	smokeModules  = 10
	smokeSeed     = 1
	smokeDatasets = 4 // single-role compendium; fleet topologies pick their own depth
)

// topology is one in-process deployment under test.
type topology struct {
	name string
	// url is the load target (the only listener in single mode, the
	// coordinator in shard2 mode).
	url string
	// genes is the queryable universe, paneRows the per-dataset heatmap
	// row counts (nil when the target serves no heatmaps).
	genes    []string
	paneRows []int
	// mix is a workload mix every endpoint of which the target actually
	// serves (a coordinator scatters search and enrich but has no heatmap).
	mix workload.Mix
	// srv is the daemon in single mode (nil for fleets), exposed so the
	// panwalk profile can pre-warm its clustered trees.
	srv *server.Server
	// shardServers are the shard backends, exposed so fleet tests can
	// kill one mid-run. Empty in single mode. Index-aligned with
	// identities and shardSrv; restartShard swaps entries in place.
	shardServers []*httptest.Server
	shardSrv     []*server.Server
	// identities are the fleet's rendezvous identities ("shard-0"...);
	// repl the replication factor; both empty/zero in single mode.
	identities []string
	repl       int

	// The compendium behind every fleet member, kept so a restarted shard
	// can rebuild its slice (and a reload can load datasets it lacked).
	u     *synth.Universe
	dss   []*microarray.Dataset
	names []string

	// urls maps identity -> live base URL; guarded because restartShard
	// rewrites entries while the coordinator's Resolve hook reads them.
	mu   sync.Mutex
	urls map[string]string

	closers []func()
}

// resolve is the identity->URL hook shared by the coordinator and the
// shards' handoff pushes; it follows restarts.
func (tp *topology) resolve(id string) string {
	tp.mu.Lock()
	defer tp.mu.Unlock()
	return tp.urls[id]
}

func (tp *topology) close() {
	for i := len(tp.closers) - 1; i >= 0; i-- {
		tp.closers[i]()
	}
}

func smokeCompendium(nDatasets int) (*synth.Universe, []*microarray.Dataset) {
	u := synth.NewUniverse(smokeGenes, smokeModules, smokeSeed)
	dss, _ := u.GenerateCompendium(synth.CompendiumSpec{
		NumDatasets: nDatasets, MinExperiments: 8, MaxExperiments: 14,
		ActiveFraction: 0.5, Noise: 0.3, MissingRate: 0.02, Seed: smokeSeed + 50,
	})
	return u, dss
}

// smokeEnricher builds the synthetic-ontology GOLEM enricher over a smoke
// universe. Every shard of a fleet calls this with the same universe, so
// the enrichers share a background fingerprint and the coordinator can
// merge their slice tallies exactly.
func smokeEnricher(u *synth.Universe) (*golem.Enricher, error) {
	var leafNames []string
	for _, m := range u.Modules {
		leafNames = append(leafNames, m.Name)
	}
	onto, leafOf, err := ontology.Synthetic(ontology.SyntheticSpec{LeafNames: leafNames, Seed: smokeSeed + 3})
	if err != nil {
		return nil, fmt.Errorf("synthetic ontology: %w", err)
	}
	enricher, err := golem.NewEnricher(onto, ontology.AnnotateFromModules(u.Annotations(), leafOf), u.GeneIDs())
	if err != nil {
		return nil, fmt.Errorf("enricher: %w", err)
	}
	return enricher, nil
}

// newSingleTopology builds a single-role daemon: SPELL + GOLEM + heatmap
// panes in one process, every endpoint live, generous render pool so the
// smoke gate measures the server rather than deliberate load shedding.
// prefetchWorkers arms the speculative tile prefetcher (0 = off), which
// the panwalk profile compares across.
func newSingleTopology(prefetchWorkers int) (*topology, error) {
	u, dss := smokeCompendium(smokeDatasets)
	engine, err := spell.NewEngine(dss)
	if err != nil {
		return nil, err
	}
	enricher, err := smokeEnricher(u)
	if err != nil {
		return nil, err
	}
	srv, err := server.New(server.Config{
		Engine:          engine,
		Enricher:        enricher,
		RawDatasets:     dss,
		TreeMetric:      cluster.PearsonDist,
		TreeLinkage:     cluster.AverageLinkage,
		CacheBytes:      32 << 20,
		RenderWorkers:   runtime.GOMAXPROCS(0),
		RenderQueue:     256,
		PrefetchWorkers: prefetchWorkers,
	})
	if err != nil {
		return nil, err
	}
	hs := httptest.NewServer(srv)
	tp := &topology{
		name:    "single",
		url:     hs.URL,
		srv:     srv,
		genes:   u.GeneIDs(),
		mix:     workload.Mix{Search: 5, Heatmap: 3, Enrich: 2, Stats: 1},
		closers: []func(){srv.Close, hs.Close},
	}
	for _, ds := range dss {
		tp.paneRows = append(tp.paneRows, ds.NumGenes())
	}
	return tp, nil
}

// newFleetTopology builds the general fleet: n shard-role daemons, each
// loading every dataset of an nDatasets-deep compendium that ranks it in
// the top-repl rendezvous owners, and a coordinator scattering /api/search
// over the fleet with that replication factor. Shard identities are the
// logical strings "shard-0".."shard-N" resolved to httptest URLs through
// the coordinator's Resolve hook — the same identity/dial split a real
// deployment gets from -shards plus DNS. Every shard carries the synthetic
// ontology, so the coordinator scatters enrichment as well as search; only
// heatmaps stay off the fleet mix. Every member boots with the drain
// plumbing armed under fleetAdminToken, so rolling-restart and chaos
// harnesses can drive reloads, drains and warm handoffs over the wire.
// coordCacheBytes sizes the coordinator's merged-result cache — pass
// something tiny (e.g. 16) to force every search to re-scatter, which is
// what a shard-kill test needs: cached full merges would keep answering
// non-degraded after a shard died. scatterClient, when non-nil, issues the
// coordinator's shard requests — the chaos mode passes a faultline-wrapped
// client here.
func newFleetTopology(name string, nShards, repl, nDatasets int, coordCacheBytes int64, scatterClient *http.Client) (*topology, error) {
	u, dss := smokeCompendium(nDatasets)
	names := make([]string, len(dss))
	for i, ds := range dss {
		names[i] = ds.Name
	}
	identities := make([]string, nShards)
	for i := range identities {
		identities[i] = fmt.Sprintf("shard-%d", i)
	}
	tp := &topology{
		name: name, identities: identities, repl: repl,
		u: u, dss: dss, names: names,
		urls: make(map[string]string, nShards),
	}
	ok := false
	defer func() {
		if !ok {
			tp.close()
		}
	}()
	for _, self := range identities {
		if err := tp.bootShard(self); err != nil {
			return nil, err
		}
	}
	coordr, err := shard.NewCoordinator(shard.Config{
		Shards:      identities,
		Replication: repl,
		Retry:       true,
		Resolve:     tp.resolve,
		Client:      scatterClient,
	})
	if err != nil {
		return nil, err
	}
	coord, err := server.New(server.Config{
		Scatter: coordr, CacheBytes: coordCacheBytes, FleetToken: fleetAdminToken,
	})
	if err != nil {
		return nil, err
	}
	chs := httptest.NewServer(coord)
	tp.closers = append(tp.closers, coord.Close, chs.Close)
	tp.url = chs.URL
	tp.genes = u.GeneIDs()
	tp.mix = workload.Mix{Search: 4, Enrich: 2, Stats: 1}
	ok = true
	return tp, nil
}

// bootShard builds and starts one shard over its owned slice of the
// full-fleet view, wiring identity, membership, loader and admin token —
// used at boot and again by restartShard after a drain.
func (tp *topology) bootShard(self string) error {
	owned := shard.OwnedIndexesR(tp.names, tp.identities, self, tp.repl)
	if len(owned) == 0 {
		return fmt.Errorf("shard %s owns no datasets at this fixture seed", self)
	}
	var slice []*microarray.Dataset
	for _, gi := range owned {
		slice = append(slice, tp.dss[gi])
	}
	se, err := spell.NewEngine(slice)
	if err != nil {
		return err
	}
	enricher, err := smokeEnricher(tp.u)
	if err != nil {
		return err
	}
	ss, err := server.New(server.Config{
		Engine: se, Enricher: enricher,
		ShardIndexes: owned, ShardDatasetIDs: tp.names, CacheBytes: 8 << 20,
		ShardSelf: self, ShardFleet: tp.identities, ShardReplication: tp.repl,
		ShardRawDatasets: slice,
		ShardLoader: func(_ context.Context, gi int) (*microarray.Dataset, error) {
			if gi < 0 || gi >= len(tp.dss) {
				return nil, fmt.Errorf("dataset index %d outside the %d-dataset compendium", gi, len(tp.dss))
			}
			return tp.dss[gi], nil
		},
		ShardResolve: tp.resolve,
		FleetToken:   fleetAdminToken,
	})
	if err != nil {
		return err
	}
	hs := httptest.NewServer(ss)
	tp.closers = append(tp.closers, ss.Close, hs.Close)
	idx := -1
	for i, id := range tp.identities {
		if id == self {
			idx = i
			break
		}
	}
	if idx < len(tp.shardServers) {
		tp.shardServers[idx], tp.shardSrv[idx] = hs, ss
	} else {
		tp.shardServers = append(tp.shardServers, hs)
		tp.shardSrv = append(tp.shardSrv, ss)
	}
	tp.mu.Lock()
	tp.urls[self] = hs.URL
	tp.mu.Unlock()
	return nil
}

// restartShard closes shard i's current instance and boots a fresh one at
// a new URL with full-fleet holdings — the "restart" half of a rolling
// restart. Double closes at teardown are harmless.
func (tp *topology) restartShard(i int) error {
	tp.shardSrv[i].Close()
	tp.shardServers[i].Close()
	return tp.bootShard(tp.identities[i])
}

// newShard2Topology is the unreplicated two-shard fleet: each of the 6
// datasets lives on exactly one shard, so killing a shard must degrade.
func newShard2Topology(coordCacheBytes int64) (*topology, error) {
	return newFleetTopology("shard2", 2, 1, 6, coordCacheBytes, nil)
}

// newShard4Topology is the replicated fleet: 4 shards holding an
// 8-dataset compendium at replication 2, so any single shard is
// redundant.
func newShard4Topology(coordCacheBytes int64) (*topology, error) {
	return newFleetTopology("shard4", 4, 2, 8, coordCacheBytes, nil)
}

func newTopology(name string, coordCacheBytes int64) (*topology, error) {
	switch name {
	case "single":
		return newSingleTopology(0)
	case "shard2":
		return newShard2Topology(coordCacheBytes)
	case "shard4":
		return newShard4Topology(coordCacheBytes)
	default:
		return nil, fmt.Errorf("unknown topology %q (single, shard2 or shard4)", name)
	}
}
