package forestview

// One benchmark family per paper artifact (figure or quantified claim).
// DESIGN.md §9 maps each to its experiment ID; EXPERIMENTS.md records
// the measured series next to what the paper reports.

import (
	"bytes"
	"context"
	"fmt"
	"image/color"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"forestview/internal/baseline"
	"forestview/internal/cluster"
	"forestview/internal/core"
	"forestview/internal/golem"
	"forestview/internal/microarray"
	"forestview/internal/ontology"
	"forestview/internal/render"
	"forestview/internal/server"
	"forestview/internal/shard"
	"forestview/internal/spell"
	"forestview/internal/synth"
	"forestview/internal/wall"
	"forestview/internal/workload"
)

// ---------------------------------------------------------------------------
// Shared fixtures, built once.

type fixture struct {
	universe *synth.Universe
	caseCol  []*microarray.Dataset
	panes    []*core.ClusteredDataset
	fv       *core.ForestView
	onto     *ontology.Ontology
	leafOf   map[string]string
	ann      *ontology.Annotations
	enricher *golem.Enricher
}

var (
	fixOnce sync.Once
	fix     *fixture
)

func getFixture(b testing.TB) *fixture {
	fixOnce.Do(func() {
		u := synth.NewUniverse(800, 16, 7)
		col := synth.StressCaseCollection(u, 500)
		var panes []*core.ClusteredDataset
		for _, ds := range col {
			cd, err := core.Cluster(ds, core.ClusterOptions{
				Metric: cluster.PearsonDist, Linkage: cluster.AverageLinkage})
			if err != nil {
				panic(err)
			}
			panes = append(panes, cd)
		}
		fv, err := core.New(panes)
		if err != nil {
			panic(err)
		}
		var names []string
		for _, m := range u.Modules {
			names = append(names, m.Name)
		}
		onto, leafOf, err := ontology.Synthetic(ontology.SyntheticSpec{LeafNames: names, Seed: 9})
		if err != nil {
			panic(err)
		}
		ann := ontology.AnnotateFromModules(u.Annotations(), leafOf)
		enr, err := golem.NewEnricher(onto, ann, u.GeneIDs())
		if err != nil {
			panic(err)
		}
		fix = &fixture{
			universe: u, caseCol: col, panes: panes, fv: fv,
			onto: onto, leafOf: leafOf, ann: ann, enricher: enr,
		}
	})
	return fix
}

// ---------------------------------------------------------------------------
// F1 — Figure 1 (software architecture): merged dataset interface.

func BenchmarkF1_MergedInterfaceBuild(b *testing.B) {
	f := getFixture(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.NewMerged(f.caseCol); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkF1_MergedInterfaceAccess(b *testing.B) {
	f := getFixture(b)
	m := f.fv.Merged()
	rng := rand.New(rand.NewSource(1))
	nD, nG := m.NumDatasets(), m.NumGenes()
	b.ResetTimer()
	sink := 0.0
	for i := 0; i < b.N; i++ {
		d := rng.Intn(nD)
		g := rng.Intn(nG)
		sink += m.Value(d, g, i%m.NumExperiments(d))
	}
	_ = sink
}

// ---------------------------------------------------------------------------
// F2 — Figure 2 (gene subset across datasets): synchronized pane rendering.

func BenchmarkF2_SynchronizedPanes(b *testing.B) {
	u := synth.NewUniverse(600, 12, 3)
	for _, nPanes := range []int{1, 3, 6, 12} {
		b.Run(fmt.Sprintf("panes-%d", nPanes), func(b *testing.B) {
			var cds []*core.ClusteredDataset
			for i := 0; i < nPanes; i++ {
				ds := u.Generate(synth.DatasetSpec{
					Name: fmt.Sprintf("ds%d", i), NumExperiments: 20, Seed: int64(i + 1)})
				cd, err := core.Cluster(ds, core.ClusterOptions{
					Metric: cluster.PearsonDist, Linkage: cluster.AverageLinkage})
				if err != nil {
					b.Fatal(err)
				}
				cds = append(cds, cd)
			}
			fv, err := core.New(cds)
			if err != nil {
				b.Fatal(err)
			}
			if err := fv.SelectRegion(0, 0, 29); err != nil {
				b.Fatal(err)
			}
			c := render.NewCanvas(1920, 1080, color.RGBA{A: 255})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fv.RenderScene(c, 1920, 1080)
			}
		})
	}
}

func BenchmarkF2_SelectionSize(b *testing.B) {
	f := getFixture(b)
	for _, sel := range []int{10, 50, 200} {
		b.Run(fmt.Sprintf("genes-%d", sel), func(b *testing.B) {
			if err := f.fv.SelectRegion(0, 0, sel-1); err != nil {
				b.Fatal(err)
			}
			c := render.NewCanvas(1920, 1080, color.RGBA{A: 255})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.fv.RenderScene(c, 1920, 1080)
			}
		})
	}
}

// ---------------------------------------------------------------------------
// F3 — Figure 3 (display wall deployment): synchronized frame rendering
// across tile grids, local and over the TCP control plane.

func BenchmarkF3_WallScaling(b *testing.B) {
	f := getFixture(b)
	if err := f.fv.SelectRegion(0, 0, 29); err != nil {
		b.Fatal(err)
	}
	scene := core.WallScene{FV: f.fv}
	configs := []struct {
		name string
		cfg  wall.Config
	}{
		{"desktop-1x1-2MP", wall.Desktop2MP()},
		{"tiles-2x2-3MP", wall.Config{TilesX: 2, TilesY: 2, TileW: 1024, TileH: 768}},
		{"princeton-8x3-19MP", wall.PrincetonWall()},
	}
	for _, c := range configs {
		b.Run(c.name, func(b *testing.B) {
			w, err := wall.NewWall(c.cfg, scene)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			var skew int64
			for i := 0; i < b.N; i++ {
				fs := w.RenderFrame()
				skew += fs.SkewNS
			}
			b.StopTimer()
			pixPerFrame := float64(c.cfg.Pixels())
			b.ReportMetric(pixPerFrame*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mpix/s")
			b.ReportMetric(float64(skew)/float64(b.N)/1e6, "skew-ms/frame")
		})
	}
}

func BenchmarkF3_WallNetProtocol(b *testing.B) {
	f := getFixture(b)
	scene := core.WallScene{FV: f.fv}
	cfg := wall.Config{TilesX: 2, TilesY: 2, TileW: 512, TileH: 384}
	nw, err := wall.StartNetWall(cfg, scene)
	if err != nil {
		b.Fatal(err)
	}
	defer nw.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nw.RenderFrame(); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// F4 — Figure 4 (SPELL search): latency vs compendium size.

func BenchmarkF4_SPELL(b *testing.B) {
	u := synth.NewUniverse(1000, 20, 13)
	query := u.ModuleGeneIDs(4)[:4]
	for _, nDS := range []int{5, 10, 20} {
		b.Run(fmt.Sprintf("datasets-%d", nDS), func(b *testing.B) {
			dss, _ := u.GenerateCompendium(synth.CompendiumSpec{
				NumDatasets: nDS, MinExperiments: 12, MaxExperiments: 24,
				ActiveFraction: 0.4, Noise: 0.25, Seed: 17,
			})
			engine, err := spell.NewEngine(dss)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := engine.Search(query, spell.Options{MaxGenes: 50}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkF4_SPELLReference runs the identical workload through the
// retained naive scorer (map-merged, per-pair Pearson from scratch) so the
// dense kernel's speedup is measurable within one binary: compare against
// BenchmarkF4_SPELL at the same dataset counts.
func BenchmarkF4_SPELLReference(b *testing.B) {
	u := synth.NewUniverse(1000, 20, 13)
	query := u.ModuleGeneIDs(4)[:4]
	for _, nDS := range []int{5, 10, 20} {
		b.Run(fmt.Sprintf("datasets-%d", nDS), func(b *testing.B) {
			dss, _ := u.GenerateCompendium(synth.CompendiumSpec{
				NumDatasets: nDS, MinExperiments: 12, MaxExperiments: 24,
				ActiveFraction: 0.4, Noise: 0.25, Seed: 17,
			})
			engine, err := spell.NewEngine(dss)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := engine.ReferenceSearch(query, spell.Options{MaxGenes: 50}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkF4_SPELLEngineBuild(b *testing.B) {
	u := synth.NewUniverse(1000, 20, 13)
	dss, _ := u.GenerateCompendium(synth.CompendiumSpec{
		NumDatasets: 10, MinExperiments: 12, MaxExperiments: 24,
		ActiveFraction: 0.4, Noise: 0.25, Seed: 17,
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spell.NewEngine(dss); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// F4b — the clustering half of the interactive-heatmap path: the
// nearest-neighbor-chain kernel vs the retained reference agglomerator,
// at the paper's dataset scale. Run with GOMAXPROCS=4 for the README
// before/after table; the acceptance bar is >= 4x at 2000 rows.

func clusterBenchRows(nGenes int) [][]float64 {
	u := synth.NewUniverse(nGenes, 20, 29)
	ds := u.Generate(synth.DatasetSpec{Name: "cl", NumExperiments: 50, Seed: 31})
	return ds.Data
}

func BenchmarkF4_Cluster(b *testing.B) {
	for _, nGenes := range []int{500, 1000, 2000} {
		rows := clusterBenchRows(nGenes)
		b.Run(fmt.Sprintf("genes-%d", nGenes), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := cluster.Hierarchical(rows, cluster.PearsonDist, cluster.AverageLinkage); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkF4_ClusterReference runs the identical workload through the
// retained pre-kernel path (serial distance build, greedy nearest-cache
// agglomeration) so the NN-chain speedup is measurable within one binary.
func BenchmarkF4_ClusterReference(b *testing.B) {
	for _, nGenes := range []int{500, 1000, 2000} {
		rows := clusterBenchRows(nGenes)
		b.Run(fmt.Sprintf("genes-%d", nGenes), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := cluster.ReferenceHierarchical(rows, cluster.PearsonDist, cluster.AverageLinkage); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkF4_HeatmapTile measures the daemon's full tile pipeline against
// a warmed tree cache: each iteration requests a distinct row window, so
// the clustered tree is reused (one build total, amortized away before the
// timer) while the render + PNG-encode + cache path runs end to end.
func BenchmarkF4_HeatmapTile(b *testing.B) {
	u := synth.NewUniverse(2000, 20, 29)
	ds := u.Generate(synth.DatasetSpec{Name: "tilebench", NumExperiments: 50, Seed: 31})
	engine, err := spell.NewEngine([]*microarray.Dataset{ds})
	if err != nil {
		b.Fatal(err)
	}
	srv, err := server.New(server.Config{
		Engine: engine, RawDatasets: []*microarray.Dataset{ds},
		CacheBytes: 32 << 20, RenderWorkers: 4, RenderQueue: 64,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	if err := srv.WarmTrees(context.Background()); err != nil {
		b.Fatal(err)
	}
	nRows := ds.NumGenes()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from := (i * 7) % (nRows - 256)
		url := fmt.Sprintf("/api/heatmap?dataset=0&w=256&h=256&rows=%d:%d", from, from+256)
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
		if rec.Code != http.StatusOK {
			b.Fatalf("tile = %d: %s", rec.Code, rec.Body.String())
		}
	}
}

// ---------------------------------------------------------------------------
// F4c — the GOLEM enrichment half of the interactive drill-down path, at the
// acceptance scale from ISSUE 4: a 6k-gene background against a 2k-term
// ontology. BenchmarkF4_Enrich runs the bitset AND-popcount kernel,
// BenchmarkF4_EnrichReference the retained map-walk + per-call-Lgamma path,
// so the speedup is measurable within one binary (acceptance bar: >= 5x).
// BenchmarkF4_EnrichHTTP runs the daemon's full /api/enrich pipeline with a
// distinct selection per iteration (parse -> canonicalize -> cache miss ->
// kernel -> JSON), the enrichment analogue of BenchmarkF4_HeatmapTile.

type enrichBench struct {
	enricher   *golem.Enricher
	background []string
	selection  []string
}

var (
	enrichBenchOnce sync.Once
	enrichBenchFix  *enrichBench
)

func getEnrichBench(b testing.TB) *enrichBench {
	enrichBenchOnce.Do(func() {
		const nTerms, nGenes = 2000, 6000
		names := make([]string, nTerms)
		for i := range names {
			names[i] = fmt.Sprintf("process %d", i)
		}
		onto, leafOf, err := ontology.Synthetic(ontology.SyntheticSpec{
			LeafNames: names, IntermediateLevels: 3, Seed: 23})
		if err != nil {
			panic(err)
		}
		ann := ontology.NewAnnotations()
		background := make([]string, 0, nGenes)
		for g := 0; g < nGenes; g++ {
			id := fmt.Sprintf("G%04d", g)
			background = append(background, id)
			ann.Add(id, leafOf[names[g%nTerms]])
		}
		enr, err := golem.NewEnricher(onto, ann, background)
		if err != nil {
			panic(err)
		}
		// A 500-gene selection striding the universe, touching many terms.
		selection := make([]string, 0, 500)
		for i := 0; i < 500; i++ {
			selection = append(selection, background[(i*11)%nGenes])
		}
		enrichBenchFix = &enrichBench{enricher: enr, background: background, selection: selection}
	})
	return enrichBenchFix
}

func BenchmarkF4_Enrich(b *testing.B) {
	f := getEnrichBench(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.enricher.Analyze(f.selection, golem.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkF4_EnrichReference runs the identical workload through the
// retained pre-kernel path (per-call sort.Strings, map-walk intersections,
// math.Lgamma hypergeometrics) so the bitset kernel's speedup is measurable
// within one binary: compare against BenchmarkF4_Enrich.
func BenchmarkF4_EnrichReference(b *testing.B) {
	f := getEnrichBench(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.enricher.ReferenceAnalyze(f.selection, golem.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkF4_EnrichHTTP measures the daemon's full enrichment pipeline:
// each iteration requests a distinct 100-gene selection window, so every
// request walks parse -> canonicalize -> cache miss -> singleflight ->
// bitset kernel -> corrections -> JSON encode end to end.
func BenchmarkF4_EnrichHTTP(b *testing.B) {
	f := getEnrichBench(b)
	u := synth.NewUniverse(500, 10, 3)
	ds := u.Generate(synth.DatasetSpec{Name: "enrichbench", NumExperiments: 10, Seed: 5})
	engine, err := spell.NewEngine([]*microarray.Dataset{ds})
	if err != nil {
		b.Fatal(err)
	}
	srv, err := server.New(server.Config{
		Engine: engine, Enricher: f.enricher, CacheBytes: 32 << 20,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	nGenes := len(f.background)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from := (i * 7) % (nGenes - 100)
		url := "/api/enrich?genes=" + strings.Join(f.background[from:from+100], ",")
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
		if rec.Code != http.StatusOK {
			b.Fatalf("enrich = %d: %s", rec.Code, rec.Body.String())
		}
	}
}

// ---------------------------------------------------------------------------
// F5a — the sharded compendium (DESIGN.md §4): scatter a SPELL query over
// N loopback shard daemons and merge with global renormalization. One
// fixed 24-dataset compendium is split over the shards by the same
// rendezvous ownership the coordinator derives its scatter groups from,
// each shard running the real server role (gob endpoint, global index
// remap) with its scan bounded to ONE worker and its partial cache disabled —
// loopback shards share this machine's cores, so an unbounded scan or a
// cache hit would fake the distributed scaling being measured. With the
// per-shard scan serialized, wall time per query approaches
// scan(24/N datasets) + scatter overhead: near-linear until overhead
// dominates (and only when the host has at least N cores). Compare
// Scatter{1,2,4}Shards sec/op.

type scatterBenchTop struct {
	coord *shard.Coordinator
	query []string
}

func newScatterBench(b *testing.B, nShards int) *scatterBenchTop {
	b.Helper()
	u := synth.NewUniverse(2000, 20, 73)
	dss, _ := u.GenerateCompendium(synth.CompendiumSpec{
		// Scan-heavy on purpose: the per-query cost must be dominated by
		// the dataset scan (nDatasets × nGenes × nExp dot products), not
		// by the fixed per-shard scatter overhead (HTTP + gob + merge),
		// or the benchmark would measure the overhead's replication.
		NumDatasets: 24, MinExperiments: 80, MaxExperiments: 120,
		ActiveFraction: 0.4, Noise: 0.25, Seed: 74,
	})
	names := make([]string, len(dss))
	for i, ds := range dss {
		names[i] = ds.Name
	}
	identities := make([]string, nShards)
	for i := range identities {
		identities[i] = fmt.Sprintf("shard-%d", i)
	}
	urls := make(map[string]string, nShards)
	for _, self := range identities {
		owned := shard.OwnedIndexesR(names, identities, self, 1)
		if len(owned) == 0 {
			b.Fatalf("shard %s owns no datasets at this fixture seed", self)
		}
		var slice []*microarray.Dataset
		for _, gi := range owned {
			slice = append(slice, dss[gi])
		}
		engine, err := spell.NewEngine(slice)
		if err != nil {
			b.Fatal(err)
		}
		srv, err := server.New(server.Config{
			Engine: engine, ShardIndexes: owned, ShardDatasetIDs: names,
			// A 1-byte-per-shard budget caches nothing: every request pays
			// the full dataset scan, which is the thing under test.
			CacheBytes:        16,
			SearchParallelism: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(srv.Close)
		hs := httptest.NewServer(srv)
		b.Cleanup(hs.Close)
		urls[self] = hs.URL
	}
	coord, err := shard.NewCoordinator(shard.Config{
		Shards: identities, Deadline: time.Minute,
		Resolve: func(id string) string { return urls[id] },
	})
	if err != nil {
		b.Fatal(err)
	}
	return &scatterBenchTop{coord: coord, query: u.ModuleGeneIDs(4)[:4]}
}

func benchScatter(b *testing.B, nShards int) {
	top := newScatterBench(b, nShards)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, meta, err := top.coord.SearchCtx(context.Background(), top.query, spell.Options{MaxGenes: 50})
		if err != nil {
			b.Fatal(err)
		}
		if meta.Degraded || len(res.Genes) == 0 {
			b.Fatalf("bad scatter: meta %+v, %d genes", meta, len(res.Genes))
		}
	}
}

func BenchmarkF5_Scatter1Shards(b *testing.B) { benchScatter(b, 1) }
func BenchmarkF5_Scatter2Shards(b *testing.B) { benchScatter(b, 2) }
func BenchmarkF5_Scatter4Shards(b *testing.B) { benchScatter(b, 4) }

// ---------------------------------------------------------------------------
// F8 — distributed GOLEM (DESIGN.md §6): scatter an exact enrichment over N
// loopback shard daemons, each tallying its ownership-group word range of
// the F4c fixture's 6k-gene arena, and merge the integer counts into the
// full hypergeometric analysis. Unlike F5's dataset scan, the distributed
// tally is cheap next to the fixed per-group overhead (HTTP + gob + the
// centralized p-value math in MergeCounts), so sec/op across shard counts
// tracks the scatter round-trip itself — this family gates regressions in
// the fleet enrichment path, it is not a linear-scaling demonstration.
// Shard partial caches are disabled (16-byte budget) so every iteration
// pays the real tally; the coordinator's term-catalog fetch is cached per
// membership generation, amortized across iterations as in production.

func newEnrichScatterBench(b *testing.B, nShards int) *shard.Coordinator {
	b.Helper()
	f := getEnrichBench(b)
	// A small compendium supplies the shard role's dataset catalog (and
	// hence the ownership groups); the enrichment universe is the
	// independent 6k-gene F4c fixture, shared by every shard so the slice
	// fingerprints agree.
	u := synth.NewUniverse(100, 5, 91)
	dss, _ := u.GenerateCompendium(synth.CompendiumSpec{
		NumDatasets: 4 * nShards, MinExperiments: 4, MaxExperiments: 6, Seed: 92,
	})
	names := make([]string, len(dss))
	for i, ds := range dss {
		names[i] = ds.Name
	}
	identities := make([]string, nShards)
	for i := range identities {
		identities[i] = fmt.Sprintf("shard-%d", i)
	}
	urls := make(map[string]string, nShards)
	for _, self := range identities {
		owned := shard.OwnedIndexesR(names, identities, self, 1)
		if len(owned) == 0 {
			b.Fatalf("shard %s owns no datasets at this fixture seed", self)
		}
		var slice []*microarray.Dataset
		for _, gi := range owned {
			slice = append(slice, dss[gi])
		}
		engine, err := spell.NewEngine(slice)
		if err != nil {
			b.Fatal(err)
		}
		srv, err := server.New(server.Config{
			Engine: engine, Enricher: f.enricher,
			ShardIndexes: owned, ShardDatasetIDs: names,
			CacheBytes: 16,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(srv.Close)
		hs := httptest.NewServer(srv)
		b.Cleanup(hs.Close)
		urls[self] = hs.URL
	}
	coord, err := shard.NewCoordinator(shard.Config{
		Shards: identities, Deadline: time.Minute,
		Resolve: func(id string) string { return urls[id] },
	})
	if err != nil {
		b.Fatal(err)
	}
	return coord
}

func benchEnrichScatter(b *testing.B, nShards int) {
	coord := newEnrichScatterBench(b, nShards)
	f := getEnrichBench(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, meta, err := coord.EnrichCtx(context.Background(), f.selection, golem.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if meta.Degraded || meta.GroupsOK != meta.GroupsTotal || len(res.Results) == 0 {
			b.Fatalf("bad enrich scatter: meta %+v, %d results", meta, len(res.Results))
		}
	}
}

func BenchmarkF8_EnrichScatter1Shards(b *testing.B) { benchEnrichScatter(b, 1) }
func BenchmarkF8_EnrichScatter2Shards(b *testing.B) { benchEnrichScatter(b, 2) }
func BenchmarkF8_EnrichScatter4Shards(b *testing.B) { benchEnrichScatter(b, 4) }

// ---------------------------------------------------------------------------
// F5 — Figure 5 (GOLEM): enrichment analysis and local-map layout.

func BenchmarkF5_GOLEMEnrichment(b *testing.B) {
	f := getFixture(b)
	selection := f.universe.ModuleGeneIDs(f.universe.ESRInduced)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := f.enricher.Analyze(selection, golem.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkF5_GOLEMOntologyScale(b *testing.B) {
	for _, nTerms := range []int{100, 500, 2000} {
		b.Run(fmt.Sprintf("terms-%d", nTerms), func(b *testing.B) {
			names := make([]string, nTerms)
			for i := range names {
				names[i] = fmt.Sprintf("process %d", i)
			}
			onto, leafOf, err := ontology.Synthetic(ontology.SyntheticSpec{
				LeafNames: names, IntermediateLevels: 3, Seed: 23})
			if err != nil {
				b.Fatal(err)
			}
			// 2000 genes spread across terms.
			ann := ontology.NewAnnotations()
			var background []string
			for g := 0; g < 2000; g++ {
				id := fmt.Sprintf("G%04d", g)
				background = append(background, id)
				ann.Add(id, leafOf[names[g%nTerms]])
			}
			enr, err := golem.NewEnricher(onto, ann, background)
			if err != nil {
				b.Fatal(err)
			}
			selection := background[:100]
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := enr.Analyze(selection, golem.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkF5_GOLEMLocalMapLayout(b *testing.B) {
	f := getFixture(b)
	selection := f.universe.ModuleGeneIDs(f.universe.ESRInduced)
	results, err := f.enricher.Analyze(selection, golem.Options{})
	if err != nil {
		b.Fatal(err)
	}
	focus := golem.TopTerms(results, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := golem.LocalMap(f.onto, focus, 1)
		golem.LayoutGraph(g, 4)
	}
}

func BenchmarkF5_GOLEMGraphRender(b *testing.B) {
	f := getFixture(b)
	selection := f.universe.ModuleGeneIDs(f.universe.ESRInduced)
	results, _ := f.enricher.Analyze(selection, golem.Options{})
	g := golem.LocalMap(f.onto, golem.TopTerms(results, 5), 1)
	lay := golem.LayoutGraph(g, 4)
	c := render.NewCanvas(1200, 600, color.RGBA{A: 255})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		render.RenderGOGraph(c, render.Rect{X: 0, Y: 0, W: 1200, H: 600}, g, lay, render.GOGraphOptions{})
	}
}

// ---------------------------------------------------------------------------
// F6 — Figure 6 (combined system): the full select → analyze → render loop.

func BenchmarkF6_CombinedPipeline(b *testing.B) {
	f := getFixture(b)
	engine, err := f.fv.SpellEngine()
	if err != nil {
		b.Fatal(err)
	}
	query := f.universe.ModuleGeneIDs(f.universe.ESRInduced)[:4]
	c := render.NewCanvas(2400, 800, color.RGBA{A: 255})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// SPELL reorders panes + selects top genes.
		if _, err := f.fv.ApplySpellSearch(engine, query, 20); err != nil {
			b.Fatal(err)
		}
		// GOLEM enriches the selection.
		results, err := f.fv.EnrichSelection(f.enricher, golem.Options{})
		if err != nil {
			b.Fatal(err)
		}
		// Combined screen: ForestView scene plus the GO local map.
		f.fv.RenderScene(c, 2400, 800)
		g := golem.LocalMap(f.onto, golem.TopTerms(results, 3), 1)
		lay := golem.LayoutGraph(g, 2)
		render.RenderGOGraph(c, render.Rect{X: 1800, Y: 500, W: 580, H: 280}, g, lay, render.GOGraphOptions{})
	}
}

// BenchmarkF6_ForestbenchOpenLoop pushes the forestbench open-loop
// workload through a live single-role server in-process: the combined
// serving path (HTTP, shared cache, singleflight, SPELL scan) under a
// Poisson arrival process rather than a tight request loop. One iteration
// is one ~250ms open-loop run, so sec/op tracks the run length by
// construction; the interesting outputs are the reported p99-ms and
// achieved-qps metrics, and any 5xx fails the benchmark outright.
func BenchmarkF6_ForestbenchOpenLoop(b *testing.B) {
	u := synth.NewUniverse(300, 10, 81)
	dss, _ := u.GenerateCompendium(synth.CompendiumSpec{
		NumDatasets: 3, MinExperiments: 8, MaxExperiments: 12,
		ActiveFraction: 0.5, Noise: 0.3, Seed: 82,
	})
	engine, err := spell.NewEngine(dss)
	if err != nil {
		b.Fatal(err)
	}
	srv, err := server.New(server.Config{Engine: engine, CacheBytes: 16 << 20})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(srv.Close)
	hs := httptest.NewServer(srv)
	b.Cleanup(hs.Close)
	plan, err := workload.NewPlan(workload.Spec{
		Rate: 300, Duration: 250 * time.Millisecond, Seed: 83,
		Mix: workload.Mix{Search: 4, Stats: 1}, Genes: u.GeneIDs(),
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var p99, qps float64
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		n, err := workload.Run(context.Background(), plan, workload.RunOptions{BaseURL: hs.URL, Out: &buf})
		if err != nil {
			b.Fatal(err)
		}
		if n != len(plan.Ops) {
			b.Fatalf("wrote %d envelopes for %d ops", n, len(plan.Ops))
		}
		envs, err := workload.ReadEnvelopes(&buf)
		if err != nil {
			b.Fatal(err)
		}
		rep := workload.Analyze(envs, workload.AnalyzeOptions{})
		if rep.Errors5xx > 0 || rep.Transport > 0 {
			b.Fatalf("load errors: %d 5xx, %d transport", rep.Errors5xx, rep.Transport)
		}
		p99 += rep.Latency.P99
		qps += rep.Steps[0].AchievedQPS
	}
	b.ReportMetric(p99/float64(b.N), "p99-ms")
	b.ReportMetric(qps/float64(b.N), "achieved-qps")
}

// ---------------------------------------------------------------------------
// C1 — §1 claim: display walls beat the desktop by ~two orders of magnitude.

func BenchmarkC1_PixelCapability(b *testing.B) {
	f := getFixture(b)
	scene := core.WallScene{FV: f.fv}
	desktop := wall.Desktop2MP()
	for _, c := range []struct {
		name string
		cfg  wall.Config
	}{
		{"desktop", desktop},
		{"princeton", wall.PrincetonWall()},
		{"large", wall.LargeWall()},
	} {
		b.Run(c.name, func(b *testing.B) {
			w, err := wall.NewWall(c.cfg, scene)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.RenderFrame()
			}
			b.StopTimer()
			b.ReportMetric(float64(c.cfg.Pixels())/1e6, "Mpix")
			b.ReportMetric(float64(c.cfg.Pixels())/float64(desktop.Pixels()), "x-desktop")
			b.ReportMetric(float64(c.cfg.Pixels())*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mpix/s")
		})
	}
}

// ---------------------------------------------------------------------------
// C2 — §4 case study: the full cross-dataset stress-response analysis.

func BenchmarkC2_CaseStudy(b *testing.B) {
	f := getFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Select a cluster in the nutrient pane, read its coherence from
		// the synchronized zoom views of both stress panes.
		if err := f.fv.SelectRegion(2, 100, 129); err != nil {
			b.Fatal(err)
		}
		for p := 0; p < 2; p++ {
			rows := f.fv.ZoomContent(p)
			if len(rows) == 0 {
				b.Fatal("no zoom content")
			}
		}
	}
}

// ---------------------------------------------------------------------------
// C3 — §4 claim: "launch over a dozen independent instances and continually
// cut and paste" vs one ForestView selection.

func BenchmarkC3_WorkflowComparison(b *testing.B) {
	u := synth.NewUniverse(400, 10, 19)
	for _, nDS := range []int{4, 13} {
		var cds []*core.ClusteredDataset
		for i := 0; i < nDS; i++ {
			ds := u.Generate(synth.DatasetSpec{
				Name: fmt.Sprintf("s%d", i), NumExperiments: 12, Seed: int64(i + 40)})
			cd, err := core.Cluster(ds, core.ClusterOptions{
				Metric: cluster.PearsonDist, Linkage: cluster.AverageLinkage})
			if err != nil {
				b.Fatal(err)
			}
			cds = append(cds, cd)
		}
		b.Run(fmt.Sprintf("baseline-%d-viewers", nDS), func(b *testing.B) {
			var steps int
			for i := 0; i < b.N; i++ {
				wf, _, err := baseline.CrossDatasetComparison(cds, 0, 0, 29)
				if err != nil {
					b.Fatal(err)
				}
				steps = len(wf.Steps)
			}
			b.ReportMetric(float64(steps), "user-steps")
		})
		b.Run(fmt.Sprintf("forestview-%d-panes", nDS), func(b *testing.B) {
			fv, err := core.New(cds)
			if err != nil {
				b.Fatal(err)
			}
			var steps int
			for i := 0; i < b.N; i++ {
				wf, err := baseline.ForestViewComparison(fv, 0, 0, 29)
				if err != nil {
					b.Fatal(err)
				}
				steps = len(wf.Steps)
			}
			b.ReportMetric(float64(steps), "user-steps")
		})
	}
}

// ---------------------------------------------------------------------------
// C4 — §1 scale claim: datasets of 6,000-50,000 genes × hundreds of
// conditions; millions of values.

func BenchmarkC4_DatasetScaleCluster(b *testing.B) {
	for _, nGenes := range []int{500, 1000, 2000} {
		b.Run(fmt.Sprintf("genes-%d", nGenes), func(b *testing.B) {
			u := synth.NewUniverse(nGenes, 20, 29)
			ds := u.Generate(synth.DatasetSpec{Name: "scale", NumExperiments: 50, Seed: 31})
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := cluster.Hierarchical(ds.Data, cluster.PearsonDist, cluster.AverageLinkage); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkC4_DatasetScaleRender(b *testing.B) {
	for _, nGenes := range []int{6000, 20000, 50000} {
		b.Run(fmt.Sprintf("genes-%d", nGenes), func(b *testing.B) {
			u := synth.NewUniverse(nGenes, 30, 37)
			ds := u.Generate(synth.DatasetSpec{Name: "scale", NumExperiments: 100, Seed: 41})
			cd, err := core.FromDataset(ds)
			if err != nil {
				b.Fatal(err)
			}
			fv, err := core.New([]*core.ClusteredDataset{cd})
			if err != nil {
				b.Fatal(err)
			}
			if err := fv.SelectRegion(0, 0, 49); err != nil {
				b.Fatal(err)
			}
			c := render.NewCanvas(1920, 1080, color.RGBA{A: 255})
			b.ReportMetric(float64(nGenes*100)/1e6, "Mvalues")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fv.RenderScene(c, 1920, 1080)
			}
		})
	}
}

// ---------------------------------------------------------------------------
// F10 — the viewport pyramid (DESIGN.md §8): mipmapped tile levels,
// speculative prefetch, and float32 render slabs. The pane is genome-scale
// (24k rows), built with FromDataset so the fixture skips the O(n²)
// clustering that F4 already measures.

var (
	pyrBenchOnce sync.Once
	pyrBenchCD   *core.ClusteredDataset
)

func getPyramidBenchPane(b testing.TB) *core.ClusteredDataset {
	pyrBenchOnce.Do(func() {
		u := synth.NewUniverse(24000, 30, 53)
		ds := u.Generate(synth.DatasetSpec{Name: "pyrbench", NumExperiments: 60, Seed: 54})
		cd, err := core.FromDataset(ds)
		if err != nil {
			panic(err)
		}
		pyrBenchCD = cd
	})
	return pyrBenchCD
}

// benchPyramidTile measures the daemon's full tile pipeline at one explicit
// pyramid level: each iteration requests a distinct 20480-row window (a
// zoomed-out pane overview) as a 192x32 strip. The cache budget is a token
// 16 bytes so every request renders — level 0 scans all 20480 raw rows,
// which is what HEAD paid for every such tile, while level 3 scans the
// 2560-row slab. The acceptance bar is L3 >= 4x faster than L0. The pyramid
// is warmed before the timer so the loop measures serving, not construction.
func benchPyramidTile(b *testing.B, level int) {
	cd := getPyramidBenchPane(b)
	u := synth.NewUniverse(200, 5, 55)
	ds := u.Generate(synth.DatasetSpec{Name: "pyrengine", NumExperiments: 8, Seed: 56})
	engine, err := spell.NewEngine([]*microarray.Dataset{ds})
	if err != nil {
		b.Fatal(err)
	}
	srv, err := server.New(server.Config{
		Engine: engine, Datasets: []*core.ClusteredDataset{cd},
		CacheBytes: 16, RenderWorkers: 4, RenderQueue: 64,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(srv.Close)
	cd.Pyramid(core.PyramidOptions{})
	nRows := len(cd.DisplayOrder)
	const span = 20480
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		from := (i * 131) % (nRows - span)
		url := fmt.Sprintf("/api/heatmap?dataset=0&w=192&h=32&rows=%d:%d&level=%d", from, from+span, level)
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, url, nil))
		if rec.Code != http.StatusOK {
			b.Fatalf("tile = %d: %s", rec.Code, rec.Body.String())
		}
	}
}

func BenchmarkF10_PyramidTileL0(b *testing.B) { benchPyramidTile(b, 0) }
func BenchmarkF10_PyramidTileL3(b *testing.B) { benchPyramidTile(b, 3) }

// BenchmarkF10_RenderSlab isolates the raster half of the tile path over the
// full genome-scale level-0 slab (24000 rows x 60 cols into a 128px tile)
// in both storage modes, apart from PNG encoding and HTTP. Expect parity,
// not a float32 speedup: the global regime's per-pixel column reads touch
// one cache line per row at either element size, so float32's win is the
// halved slab footprint (Pyramid.MemBytes), which this pair would expose
// regressing into a slowdown.
func benchRenderSlab(b *testing.B, f32 bool) {
	cd := getPyramidBenchPane(b)
	slab := cd.Pyramid(core.PyramidOptions{Float32: f32}).Level(0)
	c := render.NewCanvas(128, 128, color.RGBA{A: 255})
	r := render.Rect{X: 0, Y: 0, W: 128, H: 128}
	opt := render.HeatmapOptions{Limit: 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if f32 {
			render.RenderHeatmapF32(c, r, slab.F32, opt)
		} else {
			render.RenderHeatmap(c, r, slab.F64, opt)
		}
	}
}

func BenchmarkF10_RenderSlabF64(b *testing.B) { benchRenderSlab(b, false) }
func BenchmarkF10_RenderSlabF32(b *testing.B) { benchRenderSlab(b, true) }

// BenchmarkF10_PrefetchPanWalk pushes the correlated pan/zoom workload
// (whole-window steps with the prefetcher's own zoom geometry) through a
// live server with the speculative prefetcher armed, the benchmark analogue
// of forestbench -profile=panwalk. One iteration is one ~250ms open-loop
// run; the interesting outputs are the reported warm-pct and p99-ms
// metrics, and any 5xx fails the benchmark outright.
func BenchmarkF10_PrefetchPanWalk(b *testing.B) {
	u := synth.NewUniverse(300, 10, 81)
	dss, _ := u.GenerateCompendium(synth.CompendiumSpec{
		NumDatasets: 4, MinExperiments: 8, MaxExperiments: 12,
		ActiveFraction: 0.5, Noise: 0.3, Seed: 82,
	})
	engine, err := spell.NewEngine(dss)
	if err != nil {
		b.Fatal(err)
	}
	srv, err := server.New(server.Config{
		Engine: engine, RawDatasets: dss, CacheBytes: 16 << 20,
		RenderWorkers: 4, RenderQueue: 64, PrefetchWorkers: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(srv.Close)
	if err := srv.WarmTrees(context.Background()); err != nil {
		b.Fatal(err)
	}
	hs := httptest.NewServer(srv)
	b.Cleanup(hs.Close)
	paneRows := make([]int, len(dss))
	for i, ds := range dss {
		paneRows[i] = ds.NumGenes()
	}
	plan, err := workload.NewPanwalkPlan(workload.Spec{
		Rate: 300, Duration: 250 * time.Millisecond, Seed: 83,
		TileRows: 64, TileSize: 32, PaneRows: paneRows,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var warm, p99 float64
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		n, err := workload.Run(context.Background(), plan, workload.RunOptions{BaseURL: hs.URL, Out: &buf})
		if err != nil {
			b.Fatal(err)
		}
		if n != len(plan.Ops) {
			b.Fatalf("wrote %d envelopes for %d ops", n, len(plan.Ops))
		}
		envs, err := workload.ReadEnvelopes(&buf)
		if err != nil {
			b.Fatal(err)
		}
		rep := workload.Analyze(envs, workload.AnalyzeOptions{})
		if rep.Errors5xx > 0 || rep.Transport > 0 {
			b.Fatalf("load errors: %d 5xx, %d transport", rep.Errors5xx, rep.Transport)
		}
		hm := rep.Endpoints["heatmap"]
		if hm == nil || hm.Requests == 0 {
			b.Fatal("panwalk run recorded no heatmap requests")
		}
		warm += hm.WarmRate
		p99 += hm.Latency.P99
	}
	b.ReportMetric(100*warm/float64(b.N), "warm-pct")
	b.ReportMetric(p99/float64(b.N), "p99-ms")
}

func BenchmarkC4_PCLParse(b *testing.B) {
	u := synth.NewUniverse(6000, 20, 43)
	ds := u.Generate(synth.DatasetSpec{Name: "parse", NumExperiments: 100, Seed: 47})
	var buf bytes.Buffer
	if err := microarray.WritePCL(&buf, ds); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := microarray.ReadPCL(bytes.NewReader(data), "parse"); err != nil {
			b.Fatal(err)
		}
	}
}
