module forestview

go 1.24
