module forestview

go 1.23
